(* Fault injection: torn pages, transient I/O errors, injected crashes,
   and their visibility through Fsck. *)

module P = Pagestore.Page
module D = Pagestore.Device
module B = Pagestore.Bufcache
module F = Faultsim
module Fs = Invfs.Fs

let fresh_disk () =
  let clock = Simclock.Clock.create () in
  (clock, D.create ~clock ~name:"disk" ~kind:D.Magnetic_disk ())

let filled b = P.of_bytes (Bytes.make P.size (Char.chr b))

(* ---- torn writes ---- *)

let test_torn_write_keeps_old_tail () =
  let _, dev = fresh_disk () in
  let seg = D.create_segment dev in
  let blk = D.allocate_block dev seg in
  D.poke_block dev ~segid:seg ~blkno:blk (filled 0xAA);
  let plan = F.create () in
  F.arm_device plan dev;
  F.schedule plan ~io:F.Write ~after:1 (F.Torn 100);
  D.poke_block dev ~segid:seg ~blkno:blk (filled 0xBB);
  let back = P.to_bytes (D.peek_block dev ~segid:seg ~blkno:blk) in
  Alcotest.(check char) "head is new" '\xBB' (Bytes.get back 0);
  Alcotest.(check char) "last new byte" '\xBB' (Bytes.get back 99);
  Alcotest.(check char) "tail is old" '\xAA' (Bytes.get back 100);
  Alcotest.(check char) "end is old" '\xAA' (Bytes.get back (P.size - 1));
  Alcotest.(check int) "event logged" 1 (List.length (F.events plan));
  F.disarm plan

let test_torn_read_zeroes_tail_medium_intact () =
  let _, dev = fresh_disk () in
  let seg = D.create_segment dev in
  let blk = D.allocate_block dev seg in
  D.poke_block dev ~segid:seg ~blkno:blk (filled 0xCC);
  let plan = F.create () in
  F.arm_device plan dev;
  F.schedule plan ~io:F.Read ~after:1 (F.Torn 8);
  let torn = P.to_bytes (D.peek_block dev ~segid:seg ~blkno:blk) in
  Alcotest.(check char) "head survives" '\xCC' (Bytes.get torn 0);
  Alcotest.(check char) "tail zeroed" '\x00' (Bytes.get torn 8);
  (* the medium itself was untouched: a clean re-read sees everything *)
  let again = P.to_bytes (D.peek_block dev ~segid:seg ~blkno:blk) in
  Alcotest.(check char) "re-read intact" '\xCC' (Bytes.get again (P.size - 1));
  F.disarm plan

(* ---- transient I/O errors ---- *)

let test_io_error_then_retry_succeeds () =
  let _, dev = fresh_disk () in
  let seg = D.create_segment dev in
  let blk = D.allocate_block dev seg in
  let plan = F.create () in
  F.arm_device plan dev;
  F.schedule plan ~io:F.Write ~after:1 F.Io_error;
  (match D.poke_block dev ~segid:seg ~blkno:blk (filled 0x11) with
  | () -> Alcotest.fail "expected Io_fault"
  | exception D.Io_fault _ -> ());
  (* transient: nothing remains scheduled, the retry lands *)
  Alcotest.(check int) "schedule drained" 0 (F.pending plan);
  D.poke_block dev ~segid:seg ~blkno:blk (filled 0x11);
  let back = P.to_bytes (D.peek_block dev ~segid:seg ~blkno:blk) in
  Alcotest.(check char) "retry landed" '\x11' (Bytes.get back 0);
  F.disarm plan

(* ---- crashes ---- *)

let test_crash_leaves_durable_bytes_unchanged () =
  let _, dev = fresh_disk () in
  let seg = D.create_segment dev in
  let blk = D.allocate_block dev seg in
  D.poke_block dev ~segid:seg ~blkno:blk (filled 0x77);
  let plan = F.create () in
  F.arm_device plan dev;
  F.schedule plan ~io:F.Write ~after:1 F.Crash;
  (match D.poke_block dev ~segid:seg ~blkno:blk (filled 0x88) with
  | () -> Alcotest.fail "expected Crash_injected"
  | exception D.Crash_injected _ -> ());
  let back = P.to_bytes (D.peek_block dev ~segid:seg ~blkno:blk) in
  Alcotest.(check char) "write never landed" '\x77' (Bytes.get back 0);
  F.disarm plan

let test_writeback_stream_crash () =
  let _, dev = fresh_disk () in
  let cache = B.create ~capacity:8 () in
  let seg = D.create_segment dev in
  let blk = B.new_block cache dev ~segid:seg in
  B.with_page cache dev ~segid:seg ~blkno:blk (fun p -> P.set_u8 p 0 0x42);
  B.mark_dirty cache dev ~segid:seg ~blkno:blk;
  let plan = F.create () in
  F.arm_cache plan cache;
  F.schedule plan ~io:F.Writeback ~after:1 F.Crash;
  (match B.flush cache with
  | () -> Alcotest.fail "expected Crash_injected at writeback"
  | exception D.Crash_injected _ -> ());
  Alcotest.(check int) "writeback counted" 1 (F.writebacks_seen plan);
  (* the flush never reached the device *)
  Alcotest.(check int) "no durable bytes" 0
    (P.get_u8 (D.peek_block dev ~segid:seg ~blkno:blk) 0);
  F.disarm plan

let test_torn_on_writeback_rejected () =
  let plan = F.create () in
  Alcotest.check_raises "torn writeback is meaningless"
    (Invalid_argument
       "Faultsim.schedule: torn:5 acts on the medium, so it belongs on a \
        device transfer stream (read/write), not the writeback stream")
    (fun () -> F.schedule plan ~io:F.Writeback ~after:1 (F.Torn 5));
  Alcotest.check_raises "bitrot writeback is meaningless"
    (Invalid_argument
       "Faultsim.schedule: bitrot acts on the medium, so it belongs on a \
        device transfer stream (read/write), not the writeback stream")
    (fun () -> F.schedule plan ~io:F.Writeback ~after:1 F.Bitrot)

let test_schedule_errors_name_offender () =
  let plan = F.create () in
  Alcotest.check_raises "after < 1 names the action and stream"
    (Invalid_argument
       "Faultsim.schedule: after must be >= 1 (got 0) for device_dead on the read stream")
    (fun () -> F.schedule plan ~io:F.Read ~after:0 F.Device_dead);
  let rng = Simclock.Rng.create 1L in
  Alcotest.check_raises "within < 1 names the action and stream"
    (Invalid_argument
       "Faultsim.schedule_random: within must be >= 1 (got -3) for stuck on the write stream")
    (fun () -> F.schedule_random plan rng ~io:F.Write ~within:(-3) F.Stuck);
  Alcotest.check_raises "random crash names within"
    (Invalid_argument "Faultsim.schedule_random_crash: within must be >= 1 (got 0)")
    (fun () -> F.schedule_random_crash plan rng ~within:0)

let test_event_strings_cover_media_kinds () =
  let _, dev = fresh_disk () in
  let seg = D.create_segment dev in
  let blk = D.allocate_block dev seg in
  let blk2 = D.allocate_block dev seg in
  D.poke_block dev ~segid:seg ~blkno:blk (filled 0x10);
  D.poke_block dev ~segid:seg ~blkno:blk2 (filled 0x20);
  let plan = F.create () in
  F.arm_device plan dev;
  F.schedule plan ~io:F.Read ~after:1 F.Bitrot;
  F.schedule plan ~io:F.Read ~after:2 F.Stuck;
  F.schedule plan ~io:F.Read ~after:3 F.Device_dead;
  ignore (D.peek_block dev ~segid:seg ~blkno:blk : P.t);
  (* the stuck fault lands on blk2; the third read goes back to blk so it
     reaches the hook instead of tripping over the now-stuck block *)
  (match D.peek_block dev ~segid:seg ~blkno:blk2 with
  | _ -> Alcotest.fail "expected Media_failure (stuck)"
  | exception D.Media_failure _ -> ());
  (match D.peek_block dev ~segid:seg ~blkno:blk with
  | _ -> Alcotest.fail "expected Media_failure (dead)"
  | exception D.Media_failure _ -> ());
  F.disarm plan;
  let strs = List.map F.event_to_string (F.events plan) in
  Alcotest.(check (list string))
    "log renders every media kind"
    [
      Printf.sprintf "#1 read disk/%d/%d -> bitrot" seg blk;
      Printf.sprintf "#2 read disk/%d/%d -> stuck" seg blk2;
      Printf.sprintf "#3 read disk/%d/%d -> device_dead" seg blk;
    ]
    strs

(* ---- determinism ---- *)

let crash_points seed =
  let rng = Simclock.Rng.create seed in
  let plan = F.create () in
  for _ = 1 to 5 do
    F.schedule_random_crash plan rng ~within:100
  done;
  (* drive a fake stream and record where the crashes fire *)
  let fired = ref [] in
  let _, dev = fresh_disk () in
  let seg = D.create_segment dev in
  let blk = D.allocate_block dev seg in
  F.arm_device plan dev;
  for i = 1 to 600 do
    match D.poke_block dev ~segid:seg ~blkno:blk (filled (i land 0xff)) with
    | () -> ()
    | exception D.Crash_injected _ -> fired := i :: !fired
  done;
  F.disarm plan;
  List.rev !fired

let test_seeded_plan_is_deterministic () =
  let a = crash_points 0xFEEDL and b = crash_points 0xFEEDL in
  Alcotest.(check (list int)) "same seed, same crash points" a b;
  Alcotest.(check bool) "crashes actually fired" true (List.length a > 0);
  let c = crash_points 0xBEEFL in
  Alcotest.(check bool) "different seed differs" true (a <> c)

(* ---- a torn heap page surfaces in the full fsck audit ---- *)

let make_fs () =
  let clock = Simclock.Clock.create () in
  let switch = Pagestore.Switch.create ~clock in
  ignore
    (Pagestore.Switch.add_device switch ~name:"disk0" ~kind:D.Magnetic_disk ()
      : D.t);
  let db = Relstore.Db.create ~switch ~clock () in
  Fs.make db ()

let test_torn_heap_page_caught_by_fsck () =
  let fs = make_fs () in
  let s = Fs.new_session fs in
  Fs.write_file s "/intact" (Bytes.of_string "safe and sound");
  Fs.write_file s "/victim" (Bytes.of_string "about to be torn");
  let oid = Fs.stat s "/victim" in
  let inv = Option.get (Fs.file_handle fs ~oid:oid.Invfs.Fileatt.file) in
  let heap_seg = Relstore.Heap.segid (Invfs.Inv_file.heap inv) in
  let dev = Relstore.Heap.device (Invfs.Inv_file.heap inv) in
  (* tear the next flush of the victim's heap pages only *)
  D.set_fault_hook dev
    (Some
       (fun kind ~segid ~blkno:_ ->
         if kind = D.Io_write && segid = heap_seg then Some (D.Fault_torn 64)
         else None));
  Fs.write_file s "/victim" (Bytes.of_string "replacement contents, torn on flush");
  D.set_fault_hook dev None;
  (* drop the caches so reads see the torn durable image *)
  Fs.crash fs;
  let report = Invfs.Fsck.audit fs in
  Alcotest.(check bool) "audit flags the damage" false (Invfs.Fsck.is_clean report);
  let relname = Invfs.Inv_file.relname oid.Invfs.Fileatt.file in
  let mentions_victim =
    List.exists
      (fun p -> String.equal p.Invfs.Fsck.relation relname)
      report.Invfs.Fsck.problems
  in
  Alcotest.(check bool) "problem names the torn relation" true mentions_victim

let () =
  Alcotest.run "faultsim"
    [
      ( "device faults",
        [
          Alcotest.test_case "torn write keeps old tail" `Quick
            test_torn_write_keeps_old_tail;
          Alcotest.test_case "torn read zeroes tail, medium intact" `Quick
            test_torn_read_zeroes_tail_medium_intact;
          Alcotest.test_case "io error is transient" `Quick
            test_io_error_then_retry_succeeds;
          Alcotest.test_case "crash leaves durable bytes" `Quick
            test_crash_leaves_durable_bytes_unchanged;
        ] );
      ( "plans",
        [
          Alcotest.test_case "writeback-stream crash" `Quick test_writeback_stream_crash;
          Alcotest.test_case "torn writeback rejected" `Quick
            test_torn_on_writeback_rejected;
          Alcotest.test_case "schedule errors name the offender" `Quick
            test_schedule_errors_name_offender;
          Alcotest.test_case "event strings cover media kinds" `Quick
            test_event_strings_cover_media_kinds;
          Alcotest.test_case "seeded plans replay" `Quick
            test_seeded_plan_is_deterministic;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "torn heap page flagged" `Quick
            test_torn_heap_page_caught_by_fsck;
        ] );
    ]
