let scale = ref 1.0

(* Constants for a ~20 MIPS CPU: a fixed per-tuple path plus a per-byte
   copy term (several passes over the payload). *)
let write_base = 0.0009
let write_per_byte = 1.5e-7 (* ≈1.2 ms per 8 KB chunk *)
let read_base = 0.0004
let read_per_byte = 0.6e-7
let index_op = 0.0003

let charge clock account cost =
  let cost = cost *. !scale in
  if cost > 0. then Simclock.Clock.advance clock ~account cost

let charge_record_write clock ~bytes =
  charge clock "dbms.cpu" (write_base +. (float_of_int bytes *. write_per_byte))

let charge_record_read clock ~bytes =
  charge clock "dbms.cpu" (read_base +. (float_of_int bytes *. read_per_byte))

let charge_index_op clock = charge clock "dbms.cpu" index_op

let txn_overhead = 0.008

let charge_txn_overhead clock = charge clock "dbms.cpu" txn_overhead
