lib/nfsbaseline/nfs.mli: Ffs Netsim Presto
