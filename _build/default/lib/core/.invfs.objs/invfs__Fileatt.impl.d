lib/core/fileatt.ml: Buffer Bytes Index Int32 Int64 List Option Printexc Printf Relstore String
