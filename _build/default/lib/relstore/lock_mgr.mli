(** Two-phase lock manager.

    "A standard database two-phase locking protocol [GRAY76] allows
    concurrent access to files while preventing simultaneous changes from
    interfering with one another" (paper, "Transaction Protection").  Locks
    are taken at relation granularity (one Inversion file = one relation)
    in shared or exclusive mode, held until the owning transaction commits
    or aborts, and conflicts are detected against a wait-for graph.

    The engine is a single-threaded simulation, so a conflicting request
    cannot literally sleep: it raises {!Would_block} and records a wait-for
    edge.  If the edge completes a cycle the request raises {!Deadlock}
    instead, naming a victim (the requester).  Callers — concurrency tests
    and the file-system layer — retry after the holder releases. *)

type mode = Shared | Exclusive

val mode_to_string : mode -> string

exception Would_block of { xid : Xid.t; resource : string; holders : Xid.t list }
(** The request conflicts with locks held by [holders]. *)

exception Deadlock of Xid.t
(** Granting the wait would close a cycle; the named xid should abort. *)

type t

val create : unit -> t

val acquire : t -> Xid.t -> resource:string -> mode -> unit
(** Grant the lock or raise {!Would_block} / {!Deadlock}.  Re-acquiring a
    held lock is a no-op; a Shared → Exclusive upgrade succeeds when the
    requester is the only holder. *)

val try_acquire : t -> Xid.t -> resource:string -> mode -> bool
(** Like {!acquire} but returns [false] instead of raising
    {!Would_block}.  Still raises {!Deadlock}. *)

val release_all : t -> Xid.t -> unit
(** Strict two-phase release: drop every lock and wait-for edge of a
    transaction (called at commit/abort). *)

val holders : t -> resource:string -> (Xid.t * mode) list
(** Current holders of a resource (empty if unlocked). *)

val held_by : t -> Xid.t -> (string * mode) list
(** All locks a transaction holds, sorted by resource. *)

val waiting : t -> Xid.t -> Xid.t list
(** Transactions [xid] is currently recorded as waiting for. *)

val reset : t -> unit
(** Drop every lock and wait-for edge.  Locks are volatile state: crash
    recovery calls this. *)
