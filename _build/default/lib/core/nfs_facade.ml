type t = { fs : Fs.t; session : Fs.session }
type fh = { oid : int64; asof : int64 option }

let max_transfer = 8192

(* The session never opens a transaction, so every operation through it
   auto-commits — the per-op atomicity the NFS protocol mandates. *)
let serve fs = { fs; session = Fs.new_session fs }

let root t = { oid = Fs.root_oid t.fs; asof = None }
let fh_oid fh = fh.oid
let fh_timestamp fh = fh.asof
let fh_equal a b = Int64.equal a.oid b.oid && a.asof = b.asof

let stale fh = Errors.fail Errors.ENOENT "stale file handle for oid %Ld" fh.oid

let path_of t fh =
  match Fs.path_of_oid t.session ?timestamp:fh.asof fh.oid with
  | Some p -> p
  | None -> stale fh

let join dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

(* [name@T]: the 3DFS-style namespace extension for time travel. *)
let split_timestamp name =
  match String.rindex_opt name '@' with
  | None -> (name, None)
  | Some i -> (
    let base = String.sub name 0 i in
    let stamp = String.sub name (i + 1) (String.length name - i - 1) in
    match Int64.of_string_opt stamp with
    | Some ts when base <> "" -> (base, Some ts)
    | Some _ | None -> (name, None))

let lookup t ~dir name =
  let base, requested_ts = split_timestamp name in
  (* a historical directory handle keeps its children in the past *)
  let asof = match requested_ts with Some _ as ts -> ts | None -> dir.asof in
  let dpath = path_of t dir in
  match Fs.resolve_oid_opt t.session ?timestamp:asof (join dpath base) with
  | Some oid -> Some { oid; asof }
  | None -> None

let getattr t fh =
  match Fs.path_of_oid t.session ?timestamp:fh.asof fh.oid with
  | None -> None
  | Some path -> (
    try Some (Fs.stat t.session ?timestamp:fh.asof path)
    with Errors.Fs_error (Errors.ENOENT, _) -> None)

let readdir t fh = Fs.readdir t.session ?timestamp:fh.asof (path_of t fh)

let check_len len =
  if len < 0 || len > max_transfer then
    Errors.fail Errors.EINVAL "transfer of %d exceeds the %d-byte NFS limit" len
      max_transfer

let read t fh ~off ~len =
  check_len len;
  let path = path_of t fh in
  let fd = Fs.p_open t.session ?timestamp:fh.asof path Fs.Rdonly in
  Fun.protect
    ~finally:(fun () -> Fs.p_close t.session fd)
    (fun () ->
      ignore (Fs.p_lseek t.session fd off Fs.Seek_set : int64);
      let buf = Bytes.create len in
      let n = Fs.p_read t.session fd buf len in
      if n = len then buf else Bytes.sub buf 0 n)

let write t fh ~off data =
  check_len (Bytes.length data);
  if fh.asof <> None then Errors.fail Errors.EROFS "historical handles are read-only";
  let path = path_of t fh in
  let fd = Fs.p_open t.session path Fs.Rdwr in
  Fun.protect
    ~finally:(fun () -> Fs.p_close t.session fd)
    (fun () ->
      ignore (Fs.p_lseek t.session fd off Fs.Seek_set : int64);
      ignore (Fs.p_write t.session fd data (Bytes.length data) : int))

let require_current dir op =
  if dir.asof <> None then Errors.fail Errors.EROFS "%s through a historical handle" op

let create t ~dir name =
  require_current dir "create";
  let path = join (path_of t dir) name in
  let fd = Fs.p_creat t.session path in
  let oid = Fs.fd_oid t.session fd in
  Fs.p_close t.session fd;
  { oid; asof = None }

let mkdir t ~dir name =
  require_current dir "mkdir";
  let path = join (path_of t dir) name in
  Fs.mkdir t.session path;
  { oid = Fs.lookup_oid t.session path; asof = None }

let remove t ~dir name =
  require_current dir "remove";
  let path = join (path_of t dir) name in
  let att = Fs.stat t.session path in
  if String.equal att.Fileatt.ftype "directory" then Fs.rmdir t.session path
  else Fs.unlink t.session path

let rename t ~src_dir ~src ~dst_dir ~dst =
  require_current src_dir "rename";
  require_current dst_dir "rename";
  Fs.rename t.session (join (path_of t src_dir) src) (join (path_of t dst_dir) dst)
