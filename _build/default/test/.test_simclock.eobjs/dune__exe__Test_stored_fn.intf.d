test/test_stored_fn.mli:
