(** Heap relations: no-overwrite record storage.

    A heap is one relation's record store on one device — in Inversion,
    one file's chunk table, or a catalog like [naming] or [fileatt].
    Updates never overwrite: [delete] stamps the old version's [xmax],
    [update] stamps the old and appends the new, and readers pick versions
    by {!Snapshot} visibility.  "When a record is updated or deleted, the
    original record is marked invalid, but remains in place."

    Writers take an exclusive two-phase lock on the relation; readers take
    a shared lock.  All page traffic goes through the shared buffer cache,
    so simulated I/O cost accrues naturally.

    A heap may have an {e archive} companion (populated by {!Vacuum}):
    historical scans transparently include archived record versions. *)

type t

type record = {
  tid : Tid.t;
  oid : int64;
  xmin : Xid.t;
  xmax : Xid.t;
  payload : bytes;
}

exception Append_only of string
(** Raised by every overwrite/free operation ([insert], [delete],
    [update], [kill_tid], [compact_block]) on a heap serving as a WORM
    archive tier (marked by {!set_archive}).  Only {!append_raw} and reads
    are legal there; the file-system layer surfaces this as [EROFS]. *)

val create :
  cache:Pagestore.Bufcache.t ->
  device:Pagestore.Device.t ->
  log:Status_log.t ->
  name:string ->
  relid:int64 ->
  t
(** Create an empty relation: allocates a fresh device segment. *)

val name : t -> string

val rename : t -> string -> unit
(** Catalog rename; used only by {!Db.rename_relation} during file
    migration.  The lock resource name changes with it, so rename only
    while no transaction holds locks on the relation. *)

val relid : t -> int64
val device : t -> Pagestore.Device.t
val segid : t -> int
val nblocks : t -> int

val status_log : t -> Status_log.t
(** The status log visibility decisions for this heap consult. *)

val resource : t -> string
(** The lock-manager resource name for this relation. *)

val set_archive : t -> t -> unit
(** Attach an archive heap (usually on the WORM jukebox); see {!Vacuum}.
    The archive becomes {e append-only}: every overwrite or free on it
    raises {!Append_only}, and its buffer-cache segment is pinned to the
    cold tier (history reads never evict the hot working set). *)

val archive : t -> t option

val is_append_only : t -> bool

val arm_cache_policy : t -> unit
(** Re-apply the cold-tier cache pin for an append-only heap — the
    cache-side flag is volatile; {!Db.crash} re-arms every archive after
    recovery. *)

val insert : t -> Txn.t -> oid:int64 -> bytes -> Tid.t
(** Append a record version stamped [xmin = xid].  Takes the relation's
    exclusive lock.  Payloads up to {!Heap_page.max_payload} bytes. *)

val delete : t -> Txn.t -> Tid.t -> unit
(** Stamp [xmax = xid] on the version at [tid].  Raises [Not_found] if the
    slot is dead/absent; [Invalid_argument] if already deleted by a
    committed or same transaction. *)

val update : t -> Txn.t -> Tid.t -> bytes -> Tid.t
(** Stamp the old version dead and [insert] the replacement with the same
    oid; returns the new version's TID.  The old version is fetched once
    (not re-fetched through [delete]); charges and locks are exactly one
    delete plus one insert. *)

val fetch : t -> Snapshot.t -> Tid.t -> record option
(** The version at [tid] if it exists and is visible.  Charges a shared
    read through the buffer cache (no lock: validation against locks is
    the caller's job via [read_lock]). *)

val fetch_any : t -> Tid.t -> record option
(** Like {!fetch} but ignores visibility (vacuum, debugging). *)

val append_raw : t -> oid:int64 -> xmin:Xid.t -> xmax:Xid.t -> bytes -> Tid.t
(** System-internal append preserving existing transaction stamps; used by
    the vacuum cleaner to move record versions into an archive without
    rewriting history.  Takes no locks. *)

val read_lock : t -> Txn.t -> unit
(** Take the relation's shared lock (two-phase read protection). *)

val write_lock : t -> Txn.t -> unit

val scan : t -> Snapshot.t -> (record -> unit) -> unit
(** All visible records in physical order.  With an [As_of] snapshot the
    attached archive (if any) is scanned too, so vacuumed history remains
    reachable. *)

val scan_raw : t -> (record -> unit) -> unit
(** Every record version regardless of visibility, main heap only.
    Declares the scan to the buffer cache ({!hint_sequential}) so
    read-ahead arms from the first block. *)

val scan_block : t -> int -> (record -> unit) -> unit
(** Every record version on one page, regardless of visibility; a no-op
    for out-of-range block numbers.  The incremental vacuum's budgeted
    window walks pages one at a time with this. *)

val hint_sequential : t -> unit
(** Arm buffer-cache read-ahead for this relation's segment: the caller
    is about to walk its blocks in ascending order. *)

val kill_tid : t -> Tid.t -> unit
(** Vacuum only: mark the slot dead (see {!Heap_page.kill_slot}). *)

val compact_block : t -> int -> unit
(** Vacuum only: compact one page, preserving surviving TIDs. *)

val verify : t -> (unit, string) result
(** Check every page's self-identification (relid, blkno, checksum where
    sealed).  The "fsck that never needs to run" — only media damage can
    make it fail. *)

val seal_all : t -> unit
(** Recompute checksums on all pages (called after bulk loads/tests). *)
