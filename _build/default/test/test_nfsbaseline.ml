(* The ULTRIX NFS baseline: FFS model, PRESTOserve, NFS client/server. *)

module D = Pagestore.Device
module Ffs = Nfsbaseline.Ffs
module Presto = Nfsbaseline.Presto
module Nfs = Nfsbaseline.Nfs

let fresh_ffs ?cache_pages () =
  let clock = Simclock.Clock.create () in
  let device = D.create ~clock ~name:"rz58" ~kind:D.Magnetic_disk () in
  (clock, Ffs.create ~device ?cache_pages ())

(* ---- FFS ---- *)

let test_ffs_create_write_read () =
  let _, ffs = fresh_ffs () in
  let ino = Ffs.create_file ffs "f" ~mode:Ffs.Sync in
  let data = Bytes.of_string "hello ffs" in
  Ffs.write ffs ~ino ~off:0L ~data ~mode:Ffs.Sync;
  Alcotest.(check int64) "size" 9L (Ffs.size ffs ino);
  let buf = Bytes.create 16 in
  let n = Ffs.read ffs ~ino ~off:0L ~buf ~len:16 in
  Alcotest.(check string) "roundtrip" "hello ffs" (Bytes.sub_string buf 0 n)

let test_ffs_lookup () =
  let _, ffs = fresh_ffs () in
  let ino = Ffs.create_file ffs "x" ~mode:Ffs.Sync in
  Alcotest.(check (option int)) "found" (Some ino) (Ffs.lookup ffs "x");
  Alcotest.(check (option int)) "missing" None (Ffs.lookup ffs "y");
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Ffs.create_file ffs "x" ~mode:Ffs.Sync);
       false
     with Invalid_argument _ -> true)

let test_ffs_multi_block_and_offsets () =
  let _, ffs = fresh_ffs () in
  let ino = Ffs.create_file ffs "big" ~mode:Ffs.Sync in
  let size = (3 * Ffs.block_size) + 500 in
  let data = Bytes.init size (fun i -> Char.chr (i mod 251)) in
  Ffs.write ffs ~ino ~off:0L ~data ~mode:Ffs.Sync;
  let buf = Bytes.create size in
  let n = Ffs.read ffs ~ino ~off:0L ~buf ~len:size in
  Alcotest.(check int) "full read" size n;
  Alcotest.(check bytes) "contents" data buf;
  (* partial overwrite straddling a block boundary *)
  Ffs.write ffs ~ino
    ~off:(Int64.of_int (Ffs.block_size - 3))
    ~data:(Bytes.of_string "ABCDEF") ~mode:Ffs.Sync;
  let buf2 = Bytes.create 6 in
  ignore (Ffs.read ffs ~ino ~off:(Int64.of_int (Ffs.block_size - 3)) ~buf:buf2 ~len:6);
  Alcotest.(check string) "straddle" "ABCDEF" (Bytes.to_string buf2)

let test_ffs_sparse_holes () =
  let _, ffs = fresh_ffs () in
  let ino = Ffs.create_file ffs "sparse" ~mode:Ffs.Sync in
  Ffs.write ffs ~ino
    ~off:(Int64.of_int (20 * Ffs.block_size))
    ~data:(Bytes.of_string "end") ~mode:Ffs.Sync;
  let buf = Bytes.make 10 'x' in
  let n = Ffs.read ffs ~ino ~off:(Int64.of_int Ffs.block_size) ~buf ~len:10 in
  Alcotest.(check int) "hole readable" 10 n;
  Alcotest.(check string) "zeros" (String.make 10 '\000') (Bytes.to_string buf)

let test_ffs_read_past_eof () =
  let _, ffs = fresh_ffs () in
  let ino = Ffs.create_file ffs "f" ~mode:Ffs.Sync in
  Ffs.write ffs ~ino ~off:0L ~data:(Bytes.of_string "12345") ~mode:Ffs.Sync;
  let buf = Bytes.create 10 in
  Alcotest.(check int) "short read" 2 (Ffs.read ffs ~ino ~off:3L ~buf ~len:10);
  Alcotest.(check int) "eof" 0 (Ffs.read ffs ~ino ~off:10L ~buf ~len:10)

let test_ffs_sync_writes_cost_more_than_async () =
  let cost mode =
    let clock, ffs = fresh_ffs () in
    let ino = Ffs.create_file ffs "f" ~mode in
    let data = Bytes.create Ffs.block_size in
    Simclock.Clock.reset clock;
    for i = 0 to 63 do
      Ffs.write ffs ~ino ~off:(Int64.of_int (i * Ffs.block_size)) ~data ~mode
    done;
    Simclock.Clock.now clock
  in
  Alcotest.(check bool) "sync slower" true (cost Ffs.Sync > 2. *. cost Ffs.Async)

let test_ffs_cache_makes_rereads_free () =
  let clock, ffs = fresh_ffs () in
  let ino = Ffs.create_file ffs "f" ~mode:Ffs.Sync in
  Ffs.write ffs ~ino ~off:0L ~data:(Bytes.create Ffs.block_size) ~mode:Ffs.Sync;
  let buf = Bytes.create Ffs.block_size in
  ignore (Ffs.read ffs ~ino ~off:0L ~buf ~len:Ffs.block_size);
  Simclock.Clock.reset clock;
  ignore (Ffs.read ffs ~ino ~off:0L ~buf ~len:Ffs.block_size);
  Alcotest.(check (float 1e-9)) "warm read free" 0. (Simclock.Clock.now clock);
  Ffs.drop_caches ffs;
  ignore (Ffs.read ffs ~ino ~off:0L ~buf ~len:Ffs.block_size);
  Alcotest.(check bool) "cold read costs" true (Simclock.Clock.now clock > 0.)

let test_ffs_indirect_blocks_cost_extra () =
  (* a cold read beyond the 12 direct blocks must consult a pointer
     block: one extra I/O versus a direct-block read *)
  let clock, ffs = fresh_ffs () in
  let ino = Ffs.create_file ffs "big" ~mode:Ffs.Sync in
  let data = Bytes.create Ffs.block_size in
  for i = 0 to 19 do
    Ffs.write ffs ~ino ~off:(Int64.of_int (i * Ffs.block_size)) ~data ~mode:Ffs.Sync
  done;
  let buf = Bytes.create 64 in
  Ffs.drop_caches ffs;
  Simclock.Clock.reset clock;
  ignore (Ffs.read ffs ~ino ~off:0L ~buf ~len:64);
  let direct = Simclock.Clock.now clock in
  Ffs.drop_caches ffs;
  Simclock.Clock.reset clock;
  ignore (Ffs.read ffs ~ino ~off:(Int64.of_int (15 * Ffs.block_size)) ~buf ~len:64);
  let indirect = Simclock.Clock.now clock in
  Alcotest.(check bool)
    (Printf.sprintf "indirect %.4fs > direct %.4fs" indirect direct)
    true (indirect > direct)

(* ---- PRESTOserve ---- *)

let test_presto_absorbs_until_full () =
  let clock = Simclock.Clock.create () in
  let p = Presto.create ~clock ~capacity_bytes:(4 * 8192) () in
  let drained = ref 0 in
  for i = 0 to 3 do
    Presto.write p ~key:(string_of_int i) ~bytes:8192 ~flush:(fun () -> incr drained)
  done;
  Alcotest.(check int) "all absorbed" 0 !drained;
  Presto.write p ~key:"4" ~bytes:8192 ~flush:(fun () -> incr drained);
  Alcotest.(check int) "oldest drained" 1 !drained;
  Alcotest.(check int) "drain counter" 1 (Presto.drains p)

let test_presto_rewrite_takes_no_space () =
  let clock = Simclock.Clock.create () in
  let p = Presto.create ~clock ~capacity_bytes:(4 * 8192) () in
  let drained = ref 0 in
  for _ = 1 to 100 do
    Presto.write p ~key:"same" ~bytes:8192 ~flush:(fun () -> incr drained)
  done;
  Alcotest.(check int) "no drains for rewrites" 0 !drained;
  Alcotest.(check int) "used = one entry" 8192 (Presto.used p);
  Alcotest.(check int) "absorbed all" 100 (Presto.absorbed p)

let test_presto_fifo_order () =
  let clock = Simclock.Clock.create () in
  let p = Presto.create ~clock ~capacity_bytes:(2 * 100) () in
  let order = ref [] in
  let w k = Presto.write p ~key:k ~bytes:100 ~flush:(fun () -> order := k :: !order) in
  w "a";
  w "b";
  w "c";
  (* evicts a *)
  w "d";
  (* evicts b *)
  Alcotest.(check (list string)) "fifo drains" [ "a"; "b" ] (List.rev !order)

let test_presto_drain_all () =
  let clock = Simclock.Clock.create () in
  let p = Presto.create ~clock () in
  let drained = ref 0 in
  for i = 0 to 9 do
    Presto.write p ~key:(string_of_int i) ~bytes:100 ~flush:(fun () -> incr drained)
  done;
  Presto.drain_all p;
  Alcotest.(check int) "all drained" 10 !drained;
  Alcotest.(check int) "empty" 0 (Presto.used p)

(* ---- NFS ---- *)

let fresh_nfs ?(presto = true) () =
  let clock = Simclock.Clock.create () in
  let device = D.create ~clock ~name:"rz58" ~kind:D.Magnetic_disk () in
  let ffs = Ffs.create ~device () in
  let presto_board = if presto then Some (Presto.create ~clock ()) else None in
  let server = Nfs.make_server ~ffs ?presto:presto_board () in
  let net = Netsim.create ~clock Netsim.udp_rpc_1993 in
  (clock, server, Nfs.connect ~server ~net)

let test_nfs_create_write_read () =
  let _, _, client = fresh_nfs () in
  let fh = Nfs.create client "remote.dat" in
  let data = Bytes.init 20000 (fun i -> Char.chr (i mod 256)) in
  Nfs.write client fh ~off:0L ~data;
  Alcotest.(check int64) "getattr size" 20000L (Nfs.getattr client fh);
  let buf = Bytes.create 20000 in
  let n = Nfs.read client fh ~off:0L ~buf ~len:20000 in
  Alcotest.(check int) "read all" 20000 n;
  Alcotest.(check bytes) "contents" data buf

let test_nfs_lookup () =
  let _, _, client = fresh_nfs () in
  let fh = Nfs.create client "f" in
  Alcotest.(check (option int)) "lookup" (Some fh) (Nfs.lookup client "f");
  Alcotest.(check (option int)) "missing" None (Nfs.lookup client "g")

let test_nfs_splits_large_transfers () =
  let _, _, client = fresh_nfs () in
  let fh = Nfs.create client "f" in
  let before = Nfs.rpc_count client in
  Nfs.write client fh ~off:0L ~data:(Bytes.create (64 * 1024));
  let rpcs = Nfs.rpc_count client - before in
  Alcotest.(check int) "8 RPCs for 64KB" 8 rpcs

let test_nfs_every_op_charges_network () =
  let clock, _, client = fresh_nfs () in
  let fh = Nfs.create client "f" in
  let t0 = Simclock.Clock.now clock in
  Nfs.write client fh ~off:0L ~data:(Bytes.create 100);
  let t1 = Simclock.Clock.now clock in
  let buf = Bytes.create 100 in
  ignore (Nfs.read client fh ~off:0L ~buf ~len:100);
  let t2 = Simclock.Clock.now clock in
  Alcotest.(check bool) "write charged" true (t1 > t0);
  Alcotest.(check bool) "read charged" true (t2 > t1)

let test_nfs_presto_speeds_writes () =
  let run presto =
    let clock, _, client = fresh_nfs ~presto () in
    let fh = Nfs.create client "f" in
    Simclock.Clock.reset clock;
    Nfs.write client fh ~off:0L ~data:(Bytes.create (256 * 1024));
    Simclock.Clock.now clock
  in
  Alcotest.(check bool) "nvram faster" true (run true < run false)

let test_nfs_stateless_no_open_state () =
  (* a file handle obtained before a cache drop keeps working: the
     server holds no per-client state *)
  let _, server, client = fresh_nfs () in
  let fh = Nfs.create client "f" in
  Nfs.write client fh ~off:0L ~data:(Bytes.of_string "persist");
  Nfs.drop_caches server;
  let buf = Bytes.create 7 in
  let n = Nfs.read client fh ~off:0L ~buf ~len:7 in
  Alcotest.(check string) "handle survives" "persist" (Bytes.sub_string buf 0 n)

let () =
  Alcotest.run "nfsbaseline"
    [
      ( "ffs",
        [
          Alcotest.test_case "create/write/read" `Quick test_ffs_create_write_read;
          Alcotest.test_case "lookup" `Quick test_ffs_lookup;
          Alcotest.test_case "multi-block + straddle" `Quick test_ffs_multi_block_and_offsets;
          Alcotest.test_case "sparse holes" `Quick test_ffs_sparse_holes;
          Alcotest.test_case "read past EOF" `Quick test_ffs_read_past_eof;
          Alcotest.test_case "sync dearer than async" `Quick
            test_ffs_sync_writes_cost_more_than_async;
          Alcotest.test_case "buffer cache" `Quick test_ffs_cache_makes_rereads_free;
          Alcotest.test_case "indirect block cost" `Quick test_ffs_indirect_blocks_cost_extra;
        ] );
      ( "presto",
        [
          Alcotest.test_case "absorbs until full" `Quick test_presto_absorbs_until_full;
          Alcotest.test_case "rewrite takes no space" `Quick test_presto_rewrite_takes_no_space;
          Alcotest.test_case "FIFO drain order" `Quick test_presto_fifo_order;
          Alcotest.test_case "drain_all" `Quick test_presto_drain_all;
        ] );
      ( "nfs",
        [
          Alcotest.test_case "create/write/read" `Quick test_nfs_create_write_read;
          Alcotest.test_case "lookup" `Quick test_nfs_lookup;
          Alcotest.test_case "8KB transfer limit" `Quick test_nfs_splits_large_transfers;
          Alcotest.test_case "ops charge network" `Quick test_nfs_every_op_charges_network;
          Alcotest.test_case "PRESTOserve speeds writes" `Quick test_nfs_presto_speeds_writes;
          Alcotest.test_case "stateless handles" `Quick test_nfs_stateless_no_open_state;
        ] );
    ]
