(** Per-file attribute catalog.

    {v fileatt(file, owner, type, size, ctime, mtime, atime) v}
    plus two implementation fields the paper keeps in POSTGRES system
    state: the device the file's table lives on, and the segment id of its
    chunk-number B-tree (needed to reattach after a crash).  "A simple
    two-way table join of naming and fileatt can construct all the
    metadata for a given Inversion file." *)

type att = {
  file : int64;
  size : int64;
  owner : string;
  ftype : string;  (** file type name, "directory" for directories *)
  device : string;  (** device the data relation was created on *)
  index_segid : int;  (** chunk-index segment; -1 for directories *)
  compressed : bool;  (** chunks stored compressed *)
  ctime : int64;
  mtime : int64;
  atime : int64;
}

type t

val create : Relstore.Db.t -> ?device:string -> unit -> t
(** Create the [fileatt] relation and its oid index. *)

val insert : t -> Relstore.Txn.t -> att -> unit
(** Record attributes for a new file. *)

val get : t -> Relstore.Snapshot.t -> file:int64 -> att option

val set : t -> Relstore.Txn.t -> att -> unit
(** Replace the visible attribute record (no-overwrite update), so
    attribute history time-travels like everything else.  Raises
    [Not_found] if the file has no visible attributes. *)

val remove : t -> Relstore.Txn.t -> file:int64 -> unit
(** Delete the attribute record (file removal). *)

val find_any : t -> file:int64 -> att option
(** Any attribute version for the oid, visible or not — how the vacuum
    cleaner locates storage of unlinked files. *)

val iter_all : t -> Relstore.Snapshot.t -> (att -> unit) -> unit

val heap : t -> Relstore.Heap.t

val indexes : t -> Index.Btree.t list
(** The oid index, for logical REDO replay. *)

val index_maintenance_on_vacuum : t -> Relstore.Heap.record -> unit

val crash_reset : t -> unit
(** Forget volatile index state after a simulated machine crash. *)

val index_check : t -> (unit, string) result
(** Crash-recovery audit of the oid index: structure plus completeness
    (every committed attribute record reachable under its oid). *)

val rebuild_indexes : t -> unit
(** Reconstruct the oid index from the [fileatt] heap. *)
