lib/pagestore/bufcache.ml: Device Fun Hashtbl List Page Printf Simclock
