module H = Relstore.Heap

type t = {
  heap : H.t;
  by_dir : Index.Btree.t; (* (parentid, crc32 name) -> tid *)
  by_oid : Index.Btree.t; (* file oid -> tid *)
}

type entry = {
  name : string;
  parentid : int64;
  file : int64;
  tid : Relstore.Tid.t;
}

let root_parent = 0L

let encode ~parentid ~file ~name =
  let b = Bytes.create (16 + String.length name) in
  Bytes.set_int64_le b 0 parentid;
  Bytes.set_int64_le b 8 file;
  Bytes.blit_string name 0 b 16 (String.length name);
  b

let decode tid payload =
  if Bytes.length payload < 16 then invalid_arg "Naming: malformed record";
  {
    parentid = Bytes.get_int64_le payload 0;
    file = Bytes.get_int64_le payload 8;
    name = Bytes.sub_string payload 16 (Bytes.length payload - 16);
    tid;
  }

let create db ?device () =
  let heap = Relstore.Db.create_relation db ~name:"naming" ?device () in
  let cache = Relstore.Db.cache db in
  let dev = H.device heap in
  {
    heap;
    by_dir = Index.Btree.create ~cache ~device:dev ~klen:12;
    by_oid = Index.Btree.create ~cache ~device:dev ~klen:8;
  }

let heap t = t.heap

let indexes t = [ t.by_dir; t.by_oid ]

let insert t txn ~parentid ~file ~name =
  let payload = encode ~parentid ~file ~name in
  let tid = H.insert t.heap txn ~oid:file payload in
  Index.Btree.insert_logged t.by_dir txn ~key:(Index.Key.dir_name ~parentid ~name)
    ~value:(Relstore.Tid.encode tid);
  Index.Btree.insert_logged t.by_oid txn ~key:(Index.Key.of_int64 file)
    ~value:(Relstore.Tid.encode tid);
  { name; parentid; file; tid }

let remove t txn entry = H.delete t.heap txn entry.tid

let fetch_entry t snap tid =
  match H.fetch t.heap snap tid with
  | Some r -> Some (decode r.tid r.payload)
  | None -> None

let historical = function Relstore.Snapshot.As_of _ -> true | _ -> false

(* Historical snapshots scan (including the archive, via Heap.scan) so
   vacuumed entries stay reachable; current snapshots use the indexes. *)
let scan_filter t snap pred =
  let acc = ref [] in
  H.scan t.heap snap (fun r ->
      let e = decode r.tid r.payload in
      if pred e then acc := e :: !acc);
  List.rev !acc

let lookup t snap ~parentid ~name =
  if historical snap then
    match scan_filter t snap (fun e -> e.parentid = parentid && String.equal e.name name) with
    | e :: _ -> Some e
    | [] -> None
  else begin
    let key = Index.Key.dir_name ~parentid ~name in
    let hit = ref None in
    (try
       List.iter
         (fun v ->
           match fetch_entry t snap (Relstore.Tid.decode v) with
           | Some e when e.parentid = parentid && String.equal e.name name ->
             hit := Some e;
             raise Exit
           | Some _ | None -> ())
         (Index.Btree.lookup t.by_dir ~key)
     with Exit -> ());
    !hit
  end

let list_dir t snap ~parentid =
  let entries =
    if historical snap then scan_filter t snap (fun e -> e.parentid = parentid)
    else begin
      let acc = ref [] in
      Index.Btree.scan_range t.by_dir
        ~lo:(Index.Key.dir_prefix_lo ~parentid)
        ~hi:(Index.Key.dir_prefix_hi ~parentid)
        (fun _ v ->
          match fetch_entry t snap (Relstore.Tid.decode v) with
          | Some e when e.parentid = parentid -> acc := e :: !acc
          | Some _ | None -> ());
      !acc
    end
  in
  List.sort (fun a b -> String.compare a.name b.name) entries

let by_oid t snap ~file =
  if historical snap then
    match scan_filter t snap (fun e -> e.file = file) with e :: _ -> Some e | [] -> None
  else begin
    let hit = ref None in
    (try
       List.iter
         (fun v ->
           match fetch_entry t snap (Relstore.Tid.decode v) with
           | Some e when e.file = file ->
             hit := Some e;
             raise Exit
           | Some _ | None -> ())
         (Index.Btree.lookup t.by_oid ~key:(Index.Key.of_int64 file))
     with Exit -> ());
    !hit
  end

let iter_all t snap f = H.scan t.heap snap (fun r -> f (decode r.tid r.payload))

let crash_reset t =
  Index.Btree.crash t.by_dir;
  Index.Btree.crash t.by_oid

let index_check t =
  let log = H.status_log t.heap in
  let structural name tree =
    match Index.Btree.check_invariants tree with
    | exception e -> Some (name ^ ": walk failed: " ^ Printexc.to_string e)
    | Error msg -> Some (name ^ ": " ^ msg)
    | Ok () -> None
  in
  match structural "by_dir" t.by_dir with
  | Some msg -> Error msg
  | None -> (
    match structural "by_oid" t.by_oid with
    | Some msg -> Error msg
    | None ->
      let problem = ref None in
      (try
         H.scan_raw t.heap (fun r ->
             if !problem = None && Relstore.Status_log.is_committed log r.xmin then begin
               let e = decode r.tid r.payload in
               let v = Relstore.Tid.encode r.tid in
               let in_dir =
                 List.mem v
                   (Index.Btree.lookup t.by_dir
                      ~key:(Index.Key.dir_name ~parentid:e.parentid ~name:e.name))
               in
               let in_oid =
                 List.mem v (Index.Btree.lookup t.by_oid ~key:(Index.Key.of_int64 e.file))
               in
               if not (in_dir && in_oid) then
                 problem :=
                   Some (Printf.sprintf "entry %S: committed version not indexed" e.name)
             end);
         (* Reverse direction: no index entry may dangle (heap slot never
            flushed before a crash) or alias a record that encodes under a
            different key (the slot was reused after recovery missed it). *)
         let reverse tree name key_of =
           Index.Btree.iter tree (fun key v ->
               if !problem = None then
                 match H.fetch_any t.heap (Relstore.Tid.decode v) with
                 | None -> problem := Some (name ^ ": dangling index entry")
                 | Some r ->
                   let e = decode r.tid r.payload in
                   if not (String.equal key (key_of e)) then
                     problem :=
                       Some (Printf.sprintf "%s: index entry aliases %S" name e.name))
         in
         reverse t.by_dir "by_dir" (fun e ->
             Index.Key.dir_name ~parentid:e.parentid ~name:e.name);
         reverse t.by_oid "by_oid" (fun e -> Index.Key.of_int64 e.file)
       with ex -> problem := Some ("index probe failed: " ^ Printexc.to_string ex));
      (match !problem with None -> Ok () | Some msg -> Error msg))

let rebuild_indexes t =
  Index.Btree.reinit t.by_dir;
  Index.Btree.reinit t.by_oid;
  H.scan_raw t.heap (fun r ->
      let e = decode r.tid r.payload in
      let v = Relstore.Tid.encode r.tid in
      Index.Btree.insert t.by_dir
        ~key:(Index.Key.dir_name ~parentid:e.parentid ~name:e.name)
        ~value:v;
      Index.Btree.insert t.by_oid ~key:(Index.Key.of_int64 e.file) ~value:v)

let index_maintenance_on_vacuum t (r : H.record) =
  let e = decode r.tid r.payload in
  let v = Relstore.Tid.encode r.tid in
  ignore
    (Index.Btree.delete t.by_dir
       ~key:(Index.Key.dir_name ~parentid:e.parentid ~name:e.name)
       ~value:v
      : bool);
  ignore (Index.Btree.delete t.by_oid ~key:(Index.Key.of_int64 e.file) ~value:v : bool)
