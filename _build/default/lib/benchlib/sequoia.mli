(** The Sequoia 2000 workload: what the paper's users actually do.

    "The system described here currently supports a group of physical
    scientists researching global climatic change ... The Inversion
    installation at Berkeley currently manages approximately seven
    hundred megabytes of user file data, spread across magnetic,
    magneto-optical, and write-once optical disks.  A number of
    special-purpose functions that operate on satellite image files have
    been written and are in regular use."

    This scenario drives a whole simulated installation end to end:
    ingest a season of satellite images (transactional, typed), register
    and run image functions from the query language, answer
    content-based queries, re-read historical states, migrate cold data
    to the jukebox by rule, vacuum, and audit.  It reports simulated
    elapsed time per phase plus where the time went (disk, jukebox,
    CPU, log forces). *)

type phase = {
  phase_name : string;
  elapsed_s : float;  (** simulated *)
  detail : string;
}

type report = {
  phases : phase list;
  images : int;
  bytes_ingested : int;
  accounts : (string * float) list;  (** simulated-time breakdown *)
}

val run : ?images:int -> ?image_kb:int -> ?seed:int64 -> unit -> report
(** Default 60 images of 128 KB — a scaled-down season that runs in
    seconds of real time.  Deterministic for a given seed. *)

val report_to_string : report -> string
