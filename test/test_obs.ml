(* The observability spine (lib/obs) used as a correctness oracle.

   These tests assert *how* results are produced, not just what they
   are: a just-written page re-reads without touching the device, a
   read-ahead run issues one batched continuation burst, a committed
   transaction's span contains nothing after its commit point, device
   reads nest under heap scans under transaction spans — and, with
   every subsystem disabled, the instrumentation adds no allocation to
   the Bufcache.get hot path. *)

module D = Pagestore.Device
module B = Pagestore.Bufcache

let fresh_disk () =
  let clock = Simclock.Clock.create () in
  let dev = D.create ~clock ~name:"disk0" ~kind:D.Magnetic_disk () in
  (clock, dev)

let events_named name =
  List.filter (fun (e : Obs.event) -> e.Obs.name = name) (Obs.Trace.events ())

let int_arg (e : Obs.event) key =
  match List.assoc_opt key e.Obs.args with
  | Some (Obs.I v) -> v
  | _ -> Alcotest.failf "event %s lacks int arg %s" e.Obs.name key

(* ------------------------------------------------------------------ *)
(* Registry basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_registry_basics () =
  Obs.reset ();
  let c = Obs.Metrics.counter "t.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.counter_value c);
  Alcotest.(check (option int)) "read counter" (Some 5) (Obs.Metrics.read "t.counter");
  Alcotest.(check bool) "same name, same counter" true
    (Obs.Metrics.counter "t.counter" == c);
  let h = Obs.Metrics.histogram "t.hist" in
  List.iter (Obs.Metrics.observe h) [ 0.001; 0.001; 0.001; 0.001; 0.100 ];
  Alcotest.(check int) "hist count" 5 (Obs.Metrics.hist_count h);
  let p50 = Obs.Metrics.percentile h 0.5 in
  Alcotest.(check bool) "p50 near 1ms" (p50 > 0.0005 && p50 < 0.002) true;
  let p99 = Obs.Metrics.percentile h 0.99 in
  Alcotest.(check bool) "p99 near 100ms" (p99 > 0.05 && p99 < 0.2) true;
  let live = ref 7 in
  Obs.Metrics.probe "t.probe" (fun () -> !live);
  Alcotest.(check (option int)) "probe live" (Some 7) (Obs.Metrics.read "t.probe");
  live := 9;
  Alcotest.(check (option int)) "probe tracks" (Some 9) (Obs.Metrics.read "t.probe");
  (* replace-on-register: the newest owner wins *)
  Obs.Metrics.probe "t.probe" (fun () -> 42);
  Alcotest.(check (option int)) "probe replaced" (Some 42) (Obs.Metrics.read "t.probe");
  let names = List.map fst (Obs.Metrics.snapshot ()) in
  Alcotest.(check bool) "snapshot sorted" true (List.sort String.compare names = names);
  Obs.reset ()

let test_hist_reset_and_percentiles () =
  Obs.reset ();
  let h = Obs.Metrics.histogram "t.reset" in
  (* an empty histogram reports cleanly: zero count, zero percentiles *)
  Alcotest.(check int) "empty count" 0 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 0.)) "empty p50" 0. (Obs.Metrics.percentile h 0.5);
  Alcotest.(check (float 0.)) "empty p99" 0. (Obs.Metrics.percentile h 0.99);
  (* a populated histogram keeps its quantiles ordered *)
  List.iteri
    (fun i v -> for _ = 1 to 100 - i do Obs.Metrics.observe h v done)
    [ 0.001; 0.010; 0.100; 1.0 ];
  let p50 = Obs.Metrics.percentile h 0.5 in
  let p95 = Obs.Metrics.percentile h 0.95 in
  let p99 = Obs.Metrics.percentile h 0.99 in
  Alcotest.(check bool) "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "p99 above p50" true (p99 > p50);
  (* phase reset: the same histogram object starts over with no stale
     samples leaking into the next measurement window *)
  Obs.Metrics.hist_reset h;
  Alcotest.(check int) "reset count" 0 (Obs.Metrics.hist_count h);
  Alcotest.(check (float 0.)) "reset p99" 0. (Obs.Metrics.percentile h 0.99);
  Obs.Metrics.observe h 0.004;
  Alcotest.(check int) "usable after reset" 1 (Obs.Metrics.hist_count h);
  let p99 = Obs.Metrics.percentile h 0.99 in
  Alcotest.(check bool) "post-reset p99 reflects only new data" true
    (p99 > 0.002 && p99 < 0.008);
  Obs.reset ()

let test_mask_and_ring () =
  Obs.reset ();
  Obs.Trace.set_capacity 8;
  Alcotest.(check bool) "off by default" false (Obs.on Obs.Cache);
  Obs.event Obs.Cache "t.ignored" ();
  Alcotest.(check int) "disabled emits nothing" 0 (List.length (Obs.Trace.events ()));
  Obs.enable Obs.Cache;
  Alcotest.(check bool) "enabled" true (Obs.on Obs.Cache);
  Alcotest.(check bool) "device still off" false (Obs.on Obs.Device);
  for i = 1 to 20 do
    Obs.event Obs.Cache "t.tick" ~args:[ ("i", Obs.I i) ] ()
  done;
  let evs = Obs.Trace.events () in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length evs);
  Alcotest.(check int) "emitted counts all" 20 (Obs.Trace.emitted ());
  Alcotest.(check int) "dropped the rest" 12 (Obs.Trace.dropped ());
  Alcotest.(check int) "oldest retained is #13" 13 (int_arg (List.hd evs) "i");
  let seqs = List.map (fun (e : Obs.event) -> e.Obs.seq) evs in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.sort compare seqs = seqs && List.length (List.sort_uniq compare seqs) = 8);
  (* subsystem name round-trip *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "subsys name round-trips" true
        (Obs.subsys_of_name (Obs.subsys_name s) = Some s))
    Obs.all_subsystems;
  Obs.reset ();
  Obs.Trace.set_capacity 16384

(* ------------------------------------------------------------------ *)
(* Invariant: a just-written page re-reads with zero device traffic     *)
(* ------------------------------------------------------------------ *)

let test_written_chunk_rereads_without_device () =
  Obs.reset ();
  let clock = Simclock.Clock.create () in
  let db = Relstore.Db.create ~clock () in
  let fs = Invfs.Fs.make db () in
  let s = Invfs.Fs.new_session fs in
  Invfs.Fs.write_file s "/memo.dat" (Bytes.make 5000 'x');
  Obs.enable Obs.Device;
  Obs.Trace.clear ();
  let back = Invfs.Fs.read_whole_file s "/memo.dat" in
  Alcotest.(check int) "content intact" 5000 (Bytes.length back);
  Alcotest.(check int) "no device reads on re-read of fresh data" 0
    (List.length (events_named "device.read"));
  Alcotest.(check int) "no continuation reads either" 0
    (List.length (events_named "device.read_cont"));
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Invariant: read-ahead issues one batched continuation burst per run  *)
(* ------------------------------------------------------------------ *)

let test_readahead_single_burst () =
  Obs.reset ();
  let _clock, dev = fresh_disk () in
  let cache = B.create ~capacity:64 ~os_cache_blocks:0 ~readahead_window:8 () in
  let seg = D.create_segment dev in
  for _ = 1 to 40 do
    ignore (D.allocate_block dev seg : int)
  done;
  Obs.enable Obs.Cache;
  Obs.enable Obs.Device;
  B.hint_sequential cache dev ~segid:seg;
  for blkno = 0 to 39 do
    B.with_page cache dev ~segid:seg ~blkno (fun _ -> ())
  done;
  let bursts = events_named "cache.readahead" in
  let cont_reads = events_named "device.read_cont" in
  Alcotest.(check bool) "read-ahead fired" true (List.length bursts > 0);
  (* Every continuation read belongs to exactly one recorded burst: the
     per-burst block counts sum to the continuation-read total.  A
     regression that issues prefetches one-by-one (or double-counts a
     burst) breaks this bookkeeping. *)
  let batched = List.fold_left (fun acc e -> acc + int_arg e "blocks") 0 bursts in
  Alcotest.(check int) "bursts account for every continuation read"
    (List.length cont_reads) batched;
  List.iter
    (fun e ->
      Alcotest.(check bool) "burst is batched (>= 2 blocks)" true (int_arg e "blocks" >= 2))
    bursts;
  (* and the legacy counter agrees with the trace *)
  Alcotest.(check int) "readaheads counter matches trace" (B.readaheads cache) batched;
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Invariant: nothing happens inside a txn span after its commit point  *)
(* ------------------------------------------------------------------ *)

let test_txn_span_ends_at_commit () =
  Obs.reset ();
  let db = Relstore.Db.create () in
  let rel = Relstore.Db.create_relation db ~name:"spans" () in
  Obs.enable_all ();
  Obs.Trace.clear ();
  Relstore.Db.with_txn db (fun txn ->
      for i = 1 to 5 do
        ignore
          (Relstore.Heap.insert rel txn ~oid:(Int64.of_int i) (Bytes.make 32 'r')
            : Relstore.Tid.t)
      done);
  let evs = Obs.Trace.events () in
  let commit_idx =
    match
      List.filteri (fun _ (e : Obs.event) -> e.Obs.name = "txn.commit") evs
    with
    | [ e ] ->
      let rec idx i = function
        | x :: _ when x == e -> i
        | _ :: rest -> idx (i + 1) rest
        | [] -> assert false
      in
      idx 0 evs
    | l -> Alcotest.failf "expected exactly one txn.commit, saw %d" (List.length l)
  in
  let after = List.filteri (fun i _ -> i > commit_idx) evs in
  (match after with
  | [ e ] ->
    Alcotest.(check string) "only the span close follows commit" "txn" e.Obs.name;
    Alcotest.(check bool) "and it is a span end" true (e.Obs.kind = Obs.Span_end)
  | l ->
    Alcotest.failf "expected exactly the txn span end after txn.commit, saw %d events"
      (List.length l));
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Invariant: device reads nest under heap scans under txn spans        *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  Obs.reset ();
  let db = Relstore.Db.create () in
  let rel = Relstore.Db.create_relation db ~name:"nest" () in
  Relstore.Db.with_txn db (fun txn ->
      for i = 1 to 200 do
        ignore
          (Relstore.Heap.insert rel txn ~oid:(Int64.of_int i) (Bytes.make 512 'n')
            : Relstore.Tid.t)
      done);
  (* drop the pool so the scan has to go to the device *)
  Pagestore.Bufcache.flush (Relstore.Db.cache db);
  Pagestore.Bufcache.crash (Relstore.Db.cache db);
  Obs.enable_all ();
  Obs.Trace.clear ();
  let seen = ref 0 in
  Relstore.Db.with_txn db (fun txn ->
      Relstore.Heap.scan rel (Relstore.Txn.snapshot txn) (fun _ -> incr seen));
  Alcotest.(check int) "scan saw the rows" 200 !seen;
  let evs = Obs.Trace.events () in
  let txn_depth = ref (-1) and scan_depth = ref (-1) and read_depth = ref (-1) in
  List.iter
    (fun (e : Obs.event) ->
      match (e.Obs.name, e.Obs.kind) with
      | "txn", Obs.Span_begin when !txn_depth < 0 -> txn_depth := e.Obs.depth
      | "heap.scan", Obs.Span_begin when !scan_depth < 0 -> scan_depth := e.Obs.depth
      | "device.read", Obs.Point when !read_depth < 0 -> read_depth := e.Obs.depth
      | _ -> ())
    evs;
  Alcotest.(check bool) "txn span opened" true (!txn_depth >= 0);
  Alcotest.(check bool) "heap.scan nested in txn" true (!scan_depth > !txn_depth);
  Alcotest.(check bool) "device.read nested in heap.scan" true (!read_depth > !scan_depth);
  (* the Chrome export of this nested trace is well-formed enough to load *)
  let json = Obs.Trace.to_chrome_json () in
  Alcotest.(check bool) "chrome json has complete spans" true
    (let contains sub s =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains "\"traceEvents\"" json
     && contains "\"ph\":\"X\"" (String.concat "" (String.split_on_char ' ' json))
     && contains "heap.scan" json);
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Zero allocation on the disabled hot path                             *)
(* ------------------------------------------------------------------ *)

let words_per_get cache dev seg ~iters =
  (* warm: page resident, seg-state table populated *)
  B.with_page cache dev ~segid:seg ~blkno:0 (fun _ -> ());
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    ignore (B.get cache dev ~segid:seg ~blkno:0 : Pagestore.Page.t);
    B.unpin cache dev ~segid:seg ~blkno:0
  done;
  (Gc.minor_words () -. w0) /. float_of_int iters

let test_disabled_tracing_allocates_nothing () =
  Obs.reset ();
  let _clock, dev = fresh_disk () in
  let cache = B.create ~capacity:8 ~readahead_window:0 () in
  let seg = D.create_segment dev in
  ignore (D.allocate_block dev seg : int);
  let disabled = words_per_get cache dev seg ~iters:10_000 in
  (* The hit path's own footprint (a find_opt option, the relink) is a
     handful of words; event construction would add tens more.  The
     bound is deliberately tight enough that building even one event
     record or args list per get would blow it. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled get+unpin allocates <= 16 words (got %.1f)" disabled)
    true (disabled <= 16.0);
  Obs.enable Obs.Cache;
  Obs.Trace.set_capacity 64;
  let enabled = words_per_get cache dev seg ~iters:10_000 in
  Alcotest.(check bool)
    (Printf.sprintf "tracing on allocates strictly more (%.1f vs %.1f)" enabled disabled)
    true (enabled > disabled +. 8.0);
  Obs.reset ();
  Obs.Trace.set_capacity 16384

(* ------------------------------------------------------------------ *)
(* The unified registry agrees with every legacy accessor               *)
(* ------------------------------------------------------------------ *)

let test_probes_match_legacy_counters () =
  Obs.reset ();
  let _clock, dev = fresh_disk () in
  let cache = B.create ~capacity:16 ~readahead_window:4 () in
  let seg = D.create_segment dev in
  for _ = 1 to 32 do
    ignore (D.allocate_block dev seg : int)
  done;
  B.hint_sequential cache dev ~segid:seg;
  for blkno = 0 to 31 do
    B.with_page cache dev ~segid:seg ~blkno (fun _ -> ())
  done;
  for blkno = 28 to 31 do
    B.with_page cache dev ~segid:seg ~blkno (fun _ -> ())
  done;
  let probe name =
    match Obs.Metrics.read name with
    | Some v -> v
    | None -> Alcotest.failf "probe %s not registered" name
  in
  Alcotest.(check int) "cache.gets" (B.gets cache) (probe "cache.gets");
  Alcotest.(check int) "cache.hits" (B.hits cache) (probe "cache.hits");
  Alcotest.(check int) "cache.misses" (B.misses cache) (probe "cache.misses");
  Alcotest.(check int) "cache.os_hits" (B.os_hits cache) (probe "cache.os_hits");
  Alcotest.(check int) "cache.evictions" (B.evictions cache) (probe "cache.evictions");
  Alcotest.(check int) "cache.writebacks" (B.writebacks cache) (probe "cache.writebacks");
  Alcotest.(check int) "cache.readaheads" (B.readaheads cache) (probe "cache.readaheads");
  Alcotest.(check int) "cache.readahead_hits" (B.readahead_hits cache)
    (probe "cache.readahead_hits");
  Alcotest.(check int) "cache.resident" (B.resident cache) (probe "cache.resident");
  (* the double-counting fix: gets = hits + misses, readahead_hits is a
     subset of hits, never a third outcome *)
  Alcotest.(check int) "gets = hits + misses" (B.gets cache)
    (B.hits cache + B.misses cache);
  Alcotest.(check bool) "readahead_hits <= hits" true
    (B.readahead_hits cache <= B.hits cache);
  Alcotest.(check bool) "readahead_hits <= readaheads" true
    (B.readahead_hits cache <= B.readaheads cache);
  Alcotest.(check bool) "readahead produced hits here" true (B.readahead_hits cache > 0);
  Obs.reset ()

let test_stats_coherence_under_workload () =
  Obs.reset ();
  let db = Relstore.Db.create () in
  let fs = Invfs.Fs.make db () in
  let s = Invfs.Fs.new_session fs in
  Invfs.Fs.write_file s "/a" (Bytes.make 20_000 'a');
  Invfs.Fs.write_file s "/b" (Bytes.make 120_000 'b');
  ignore (Invfs.Fs.read_whole_file s "/a" : bytes);
  Invfs.Fs.crash fs;
  let s = Invfs.Fs.new_session fs in
  ignore (Invfs.Fs.read_whole_file s "/b" : bytes);
  let cache = Relstore.Db.cache db in
  let st = B.stats cache in
  Alcotest.(check int) "s_gets = s_hits + s_misses" st.B.s_gets
    (st.B.s_hits + st.B.s_misses);
  Alcotest.(check bool) "readahead_hits subset" true
    (st.B.s_readahead_hits <= st.B.s_hits);
  Alcotest.(check int) "accessor agrees with snapshot" (B.gets cache) st.B.s_gets;
  Obs.reset ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters, histograms, probes" `Quick test_registry_basics;
          Alcotest.test_case "hist_reset and percentile ordering" `Quick
            test_hist_reset_and_percentiles;
          Alcotest.test_case "mask gating and ring wrap" `Quick test_mask_and_ring;
        ] );
      ( "trace-invariants",
        [
          Alcotest.test_case "fresh data re-reads without device traffic" `Quick
            test_written_chunk_rereads_without_device;
          Alcotest.test_case "read-ahead: one batched burst per run" `Quick
            test_readahead_single_burst;
          Alcotest.test_case "txn span ends at its commit point" `Quick
            test_txn_span_ends_at_commit;
          Alcotest.test_case "device reads nest in scans nest in txns" `Quick
            test_span_nesting;
        ] );
      ( "cost",
        [
          Alcotest.test_case "disabled tracing allocates nothing on get" `Quick
            test_disabled_tracing_allocates_nothing;
        ] );
      ( "unification",
        [
          Alcotest.test_case "probes match legacy accessors" `Quick
            test_probes_match_legacy_counters;
          Alcotest.test_case "stats stay coherent under a workload" `Quick
            test_stats_coherence_under_workload;
        ] );
    ]
