The Inversion shell, end to end: namespace, transactions, time travel,
crash recovery, queries, migration.

  $ printf 'mkdir /docs\nput /docs/memo.txt first draft\ncat /docs/memo.txt\nmark v1\nput /docs/memo.txt final version\nasof v1 cat /docs/memo.txt\ncat /docs/memo.txt\nbegin\nput /docs/doomed.txt never\nabort\nls /docs\nquery retrieve (filename) where size(file) > 0\nmigrate /docs/memo.txt jukebox\nstat /docs/memo.txt\ncrash\ncat /docs/memo.txt\nfsck\nquit\n' | invsh
  Inversion file system shell — 'help' lists commands.
  wrote /docs/memo.txt
  first draft
  marked v1 at 4.098s
  wrote /docs/memo.txt
  first draft
  final version
  transaction open
  wrote /docs/doomed.txt
  aborted
    memo.txt
    "memo.txt"
  (1 rows)
  moved /docs/memo.txt to jukebox
    oid 10002  owner user  type unknown  size 13  device jukebox
    ctime 2.063s  mtime 5.107s  atime 2.063s
  crashed and recovered (open transactions rolled back, no fsck needed)
  final version
  clean: 4 relations, 3 files

Stored POSTQUEL functions: redefine one, then run the old version by mark.

  $ printf 'put /big.dat 0123456789012345678901234567890123456789\ndeffn huge size(arg1) > 10\nquery retrieve (filename) where huge(file)\nmark v1\ndeffn huge size(arg1) > 99999\nquery retrieve (filename) where huge(file)\nasof v1 fnsrc huge\nfnsrc huge\nquit\n' | invsh
  Inversion file system shell — 'help' lists commands.
  wrote /big.dat
  defined huge (stored at /.functions/huge)
    "big.dat"
  (1 rows)
  marked v1 at 4.132s
  defined huge (stored at /.functions/huge)
  (0 rows)
  size(arg1) > 10
  size(arg1) > 99999
