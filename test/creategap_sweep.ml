(* Create-gap sweep, run via `dune build @creategap` (full) or
   `creategap_sweep.exe --quick` (rides the default `dune runtest`).

   The commit-pipeline knobs (group commit, deferred batched index
   inserts, early lock release) are a pure cost optimisation: the status
   table is NVRAM-backed, so batching its stable writes changes when the
   force is charged, never what survives a crash.  This sweep holds the
   implementation to that claim from two sides:

   - Differential crash runs: every seed is run with the pipeline off and
     again with it on (group 8, deferred index, early release).  Both
     must be oracle-identical — same bytes, same time-travel answers,
     clean fsck — under boundary and injected crashes, which exercises
     the logical REDO replay of index intents staged but never applied.

   - The gap itself: the single-process and client/server create phases
     must be faster with the pipeline on, and the group-size accounting
     (flushes x mean batch = durable commits) must close exactly.

   CREATEGAP_SEEDS=5,6,7 appends extra crash seeds; CREATEGAP_OPS=N
   lengthens each crash run. *)

module Ct = Benchlib.Crashtest
module S = Benchlib.Systems

let fixed_seeds = [ 1L; 2L; 3L; 7L; 13L; 42L; 1993L ]
let quick_seeds = [ 1L; 7L; 1993L ]

let env_seeds () =
  match Sys.getenv_opt "CREATEGAP_SEEDS" with
  | None | Some "" -> []
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun tok ->
           match Int64.of_string_opt (String.trim tok) with
           | Some n -> Some n
           | None ->
             Printf.eprintf "creategap_sweep: ignoring bad seed %S\n" tok;
             None)

let failed = ref 0

let fail fmt =
  Printf.ksprintf
    (fun m ->
      incr failed;
      Printf.printf "  FAIL: %s\n%!" m)
    fmt

(* One seed, knobs off vs on: each run must prove out against its own
   oracle.  The two runs are NOT compared to each other — the knobs
   change the device-write sequence, so the fault plan's "crash at the
   Nth write" schedule lands on different ops, and the workloads
   legitimately diverge after the first injected crash.  What must hold
   is that each divergent history is byte-identical to what its own
   oracle says committed. *)
let crash_differential ~ops seed =
  let base = { Ct.default_config with ops } in
  let on_cfg =
    { base with group_commit = 8; flush_wait_us = 2_000; deferred_index = true;
      early_release = true }
  in
  let off = Ct.run ~config:base ~seed () in
  let on = Ct.run ~config:on_cfg ~seed () in
  List.iter (fun m -> fail "seed %Ld knobs-off: %s" seed m) off.Ct.mismatches;
  List.iter (fun m -> fail "seed %Ld knobs-on: %s" seed m) on.Ct.mismatches;
  Printf.printf
    "creategap seed=%Ld: off ok (%d ops, %d crashes)  on ok (%d ops, %d crashes)\n%!"
    seed off.Ct.ops_applied off.Ct.crashes on.Ct.ops_applied on.Ct.crashes

let degraded_differential seed =
  let off = Ct.run_degraded ~seed () in
  let on =
    Ct.run_degraded ~group_commit:8 ~deferred_index:true ~early_release:true ~seed ()
  in
  List.iter (fun m -> fail "degraded seed %Ld knobs-off: %s" seed m) off;
  List.iter (fun m -> fail "degraded seed %Ld knobs-on: %s" seed m) on

(* The create phase alone (auto-commit chunk writes, the paper's Figure 3
   path), timed on a fresh system.  Returns (seconds, durable commits,
   flushes, mean group size) from the global registry deltas. *)
let h_group () = Obs.Metrics.histogram "txn.commit.group_size"

let timed_create ~mb sys =
  (* Drain any batch left pending by system setup (mkfs/mount commits),
     so the counter deltas below cover exactly the create phase. *)
  sys.S.flush_caches ();
  let d0 = match Obs.Metrics.read "log.commit.durable" with Some v -> v | None -> 0 in
  let f0 = Obs.Metrics.hist_count (h_group ()) in
  let mbytes = mb * 1024 * 1024 in
  let t0 = Simclock.Clock.now sys.S.clock in
  let f = sys.S.create "/gap.dat" in
  let off = ref 0 in
  while !off < mbytes do
    let len = min sys.S.io_unit (mbytes - !off) in
    sys.S.write f ~off:(Int64.of_int !off) (Bytes.create len);
    off := !off + len
  done;
  sys.S.flush_caches ();
  let dt = Simclock.Clock.now sys.S.clock -. t0 in
  let d1 = match Obs.Metrics.read "log.commit.durable" with Some v -> v | None -> 0 in
  let f1 = Obs.Metrics.hist_count (h_group ()) in
  let commits = d1 - d0 and flushes = f1 - f0 in
  (dt, commits, flushes, float_of_int commits /. float_of_int (max 1 flushes))

let create_gap ~mb ~label build =
  let off_s, off_commits, off_flushes, _ = timed_create ~mb (build false) in
  let on_s, on_commits, on_flushes, on_mean = timed_create ~mb (build true) in
  Printf.printf
    "creategap %s: off %.2fs (%d commits, %d flushes)  on %.2fs (%d commits, %d \
     flushes, mean group %.1f)\n%!"
    label off_s off_commits off_flushes on_s on_commits on_flushes on_mean;
  if not (on_s < off_s) then
    fail "%s create: %.3fs with the pipeline on, %.3fs off — batching must win"
      label on_s off_s;
  if off_commits <> on_commits then
    fail "%s create: %d durable commits off vs %d on — the knobs changed the work"
      label off_commits on_commits;
  if not (on_mean > 1.5) then
    fail "%s create: mean group size %.2f — the batches never formed" label on_mean

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let ops =
    match Sys.getenv_opt "CREATEGAP_OPS" with
    | None | Some "" -> if quick then 120 else Ct.default_config.Ct.ops
    | Some s -> int_of_string s
  in
  let seeds = (if quick then quick_seeds else fixed_seeds) @ env_seeds () in
  List.iter (crash_differential ~ops) seeds;
  List.iter degraded_differential (if quick then [ 1L ] else [ 1L; 2L; 3L ]);
  let mb = if quick then 2 else 4 in
  create_gap ~mb ~label:"single-process" (fun on ->
      if on then
        S.inversion_single_process ~group_commit:8 ~flush_wait_us:1_000_000
          ~deferred_index:true ~early_release:true ()
      else S.inversion_single_process ());
  create_gap ~mb ~label:"client/server" (fun on ->
      if on then
        S.inversion_client_server ~group_commit:8 ~flush_wait_us:1_000_000
          ~deferred_index:true ~early_release:true ()
      else S.inversion_client_server ());
  if !failed > 0 then begin
    Printf.eprintf "creategap_sweep: %d failures\n" !failed;
    exit 1
  end;
  print_endline "creategap_sweep: all checks passed"
