test/test_faultsim.ml: Alcotest Bytes Char Faultsim Invfs List Option Pagestore Relstore Simclock String
