lib/postquel/value.mli:
