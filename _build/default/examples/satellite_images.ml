(* Satellite images: typed files, user-defined functions, and the exact
   queries from the paper.

   Run with:  dune exec examples/satellite_images.exe

   The Sequoia 2000 scientists stored Thematic Mapper satellite images in
   Inversion and queried them with functions like [snow] that run inside
   the data manager.  This example reproduces Table 2 (file types and
   their functions) and the two queries from "Access To Inversion Files":

     retrieve (filename) where "RISC" in keywords(file)
     retrieve (snow(file), filename)
       where filetype(file) = "tm" and snow(file)/size(file) > 0.5
         and month_of(file) = "April"

   Our "TM image": a synthetic raster of bands where band 0 pixels above
   a threshold count as snow — the same code path as the real transducer
   (the function reads the file's bytes inside the storage manager, no
   copies out). *)

module Fs = Invfs.Fs
module V = Postquel.Value

let say fmt = Printf.printf (fmt ^^ "\n")

(* ---- a tiny TM-like raster format: 1-byte header (bands), then
   band-major 64x64 pixels ---- *)

let tm_width = 64
let tm_height = 64
let tm_pixels = tm_width * tm_height

let make_tm_image ~bands ~snow_fraction seed =
  let rng = Simclock.Rng.create seed in
  let b = Bytes.create (1 + (bands * tm_pixels)) in
  Bytes.set b 0 (Char.chr bands);
  for band = 0 to bands - 1 do
    for p = 0 to tm_pixels - 1 do
      let snowy = band = 0 && Simclock.Rng.float rng 1.0 < snow_fraction in
      let v = if snowy then 200 + Simclock.Rng.int rng 56 else Simclock.Rng.int rng 100 in
      Bytes.set b (1 + (band * tm_pixels) + p) (Char.chr v)
    done
  done;
  b

let snow_threshold = 180

(* ---- registered functions (Table 2) ---- *)

let register_functions fs =
  List.iter (Fs.define_type fs) [ "ascii"; "troff"; "tm"; "avhrr" ];
  let with_file_bytes f ctx args =
    match args with
    | [ V.Int oid ] -> f (Fs.read_file_at ctx.Fs.qfs ctx.Fs.snapshot ~oid)
    | _ -> V.Null
  in
  (* ASCII documents: linecount *)
  Fs.register_function fs ~name:"linecount" ~file_type:"ascii" ~arity:1
    (with_file_bytes (fun data ->
         let lines = ref 0 in
         Bytes.iter (fun c -> if c = '\n' then incr lines) data;
         V.Int (Int64.of_int !lines)));
  (* troff documents: keywords and wordcount *)
  let words data =
    String.split_on_char ' ' (String.map (function '\n' -> ' ' | c -> c) (Bytes.to_string data))
    |> List.filter (fun w -> w <> "")
  in
  Fs.register_function fs ~name:"wordcount" ~file_type:"troff" ~arity:1
    (with_file_bytes (fun data -> V.Int (Int64.of_int (List.length (words data)))));
  Fs.register_function fs ~name:"keywords" ~file_type:"troff" ~arity:1
    (with_file_bytes (fun data ->
         (* transducer: capitalized words are "keywords" *)
         let caps =
           List.filter (fun w -> String.length w > 2 && w.[0] >= 'A' && w.[0] <= 'Z') (words data)
         in
         V.List (List.map (fun w -> V.Str w) (List.sort_uniq compare caps))));
  (* TM satellite images: snow, pixelcount, pixelavg, getband *)
  let band0 data f =
    if Bytes.length data < 1 + tm_pixels then V.Null
    else f (Bytes.sub data 1 tm_pixels)
  in
  Fs.register_function fs ~name:"snow" ~file_type:"tm" ~arity:1
    (with_file_bytes (fun data ->
         band0 data (fun px ->
             let count = ref 0 in
             Bytes.iter (fun c -> if Char.code c >= snow_threshold then incr count) px;
             V.Int (Int64.of_int !count))));
  Fs.register_function fs ~name:"pixelcount" ~file_type:"tm" ~arity:1
    (with_file_bytes (fun data ->
         if Bytes.length data < 1 then V.Null
         else V.Int (Int64.of_int (Char.code (Bytes.get data 0) * tm_pixels))));
  Fs.register_function fs ~name:"pixelavg" ~file_type:"tm" ~arity:1
    (with_file_bytes (fun data ->
         band0 data (fun px ->
             let total = ref 0 in
             Bytes.iter (fun c -> total := !total + Char.code c) px;
             V.Float (float_of_int !total /. float_of_int tm_pixels))));
  Fs.register_function fs ~name:"getpixel" ~file_type:"tm" ~arity:2 (fun ctx args ->
      match args with
      | [ V.Int oid; V.Int idx ] ->
        let data = Fs.read_file_at ctx.Fs.qfs ctx.Fs.snapshot ~oid in
        let i = 1 + Int64.to_int idx in
        if i < Bytes.length data then V.Int (Int64.of_int (Char.code (Bytes.get data i)))
        else V.Null
      | _ -> V.Null)

let print_table2 fs =
  say "Table 2: file types and their registered functions";
  let reg = Fs.registry fs in
  List.iter
    (fun ftype ->
      say "  %-10s %s" ftype
        (String.concat ", " (Postquel.Registry.functions_for_type reg ftype)))
    [ "ascii"; "troff"; "tm" ]

let () =
  let clock = Simclock.Clock.create () in
  let db = Relstore.Db.create ~clock () in
  let fs = Fs.make db () in
  let s = Fs.new_session fs in
  register_functions fs;

  (* populate: documentation and satellite imagery, as at Berkeley *)
  Fs.mkdir s "/doc";
  Fs.mkdir s "/images";
  let put path ftype owner data =
    let fd = Fs.p_creat s ~ftype ~owner path in
    ignore (Fs.p_write s fd data (Bytes.length data) : int);
    Fs.p_close s fd
  in
  put "/doc/sprite.ms" "troff" "mao"
    (Bytes.of_string
       "The RISC revolution and the Sprite operating system.\n\
        We compare RISC and CISC workstations running Sprite.\n");
  put "/doc/readme.txt" "ascii" "mao"
    (Bytes.of_string "line one\nline two\nline three\n");
  (* images written in April (simulated calendar starts 1993-01-01) *)
  let april = 86400. *. (31. +. 28. +. 31. +. 10.) in
  Simclock.Clock.advance clock april;
  put "/images/tm_sierra.tm" "tm" "sequoia" (make_tm_image ~bands:5 ~snow_fraction:0.7 1L);
  put "/images/tm_delta.tm" "tm" "sequoia" (make_tm_image ~bands:5 ~snow_fraction:0.1 2L);
  Simclock.Clock.advance clock (86400. *. 60.);
  put "/images/tm_june.tm" "tm" "sequoia" (make_tm_image ~bands:5 ~snow_fraction:0.8 3L);

  print_table2 fs;
  say "";

  let show q =
    say "query> %s" q;
    List.iter
      (fun row ->
        say "  %s" (String.concat ", " (List.map V.to_string row)))
      (Fs.query s q);
    say ""
  in
  (* the paper's keyword query *)
  show {|retrieve (filename) where "RISC" in keywords(file)|};
  (* the paper's snow query: April images that are majority snow.
     snow(file) counts snowy pixels; size is in bytes, so we compare
     against pixelcount like the paper compares against size. *)
  show
    {|retrieve (snow(file), filename) where filetype(file) = "tm" and snow(file) / pixelcount(file) > 0.1 and month_of(file) = "April"|};
  (* typed dispatch: linecount is only defined on ascii files *)
  show {|retrieve (filename, linecount(file)) where linecount(file) > 0|};
  (* functions compose with arithmetic *)
  show {|retrieve (filename, pixelavg(file)) where pixelavg(file) > 100.0|};
  say "done."
