(** Rule-driven file migration.

    "Files that meet some selection criteria should be moved from fast,
    expensive storage like magnetic disk to slower, cheaper storage ...
    Arbitrarily complex rules controlling the locations of files or groups
    of files would be declared to the database manager" (paper, "Services
    Under Investigation").

    A rule pairs a query-language predicate with a target device.  The
    engine evaluates each file against the rules in order; the first rule
    that matches and names a device other than the file's current one
    triggers {!Fs.migrate_file}.  Predicates are ordinary query
    expressions over [file]/[filename], e.g.
    [size(file) > 1000000 and filetype(file) = "tm"]. *)

type rule = {
  rule_name : string;
  predicate : Postquel.Ast.expr;
  target_device : string;
}

type move = { path : string; oid : int64; from_device : string; to_device : string }

type report = { examined : int; moved : move list }

val rule : name:string -> predicate:string -> target_device:string -> rule
(** Parse the predicate; raises {!Postquel.Parser.Parse_error} on bad
    syntax and [Invalid_argument] if it is trivially malformed. *)

val run : Fs.t -> rule list -> report
(** One migration sweep over every file (directories are skipped). *)
