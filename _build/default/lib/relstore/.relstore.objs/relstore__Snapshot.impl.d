lib/relstore/snapshot.ml: Printf Status_log Xid
