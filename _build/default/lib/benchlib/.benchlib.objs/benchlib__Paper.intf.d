lib/benchlib/paper.mli: Workload
