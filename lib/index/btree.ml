module Page = Pagestore.Page
module Bufcache = Pagestore.Bufcache
module Device = Pagestore.Device

(* Block 0 is the meta page; nodes live in blocks >= 1, so child/next
   pointer 0 doubles as "none". *)
let meta_magic = 0x424D
let node_magic = 0x424E
let no_block = 0

(* meta page offsets *)
let m_magic = 0
let m_klen = 2
let m_root = 4
let m_height = 8
let m_count = 12

(* node page offsets *)
let n_magic = 0
let n_level = 2
let n_nitems = 4
let n_next = 6
let n_child0 = 10
let items_base = 16

type t = {
  cache : Bufcache.t;
  device : Device.t;
  segid : int;
  klen : int;
  isize : int; (* klen + 8-byte value suffix *)
  mutable mem_count : int; (* -1 = unknown (recount from leaves) *)
  (* Deferred-insert overlay: staged items (newest first) not yet in the
     tree.  Volatile — a crash drops it; logical REDO from the status
     log's intents reinstates the committed part.  Reads merge it. *)
  mutable pending : string list;
  mutable hook_registered : bool;
}

let klen t = t.klen
let segid t = t.segid
let device t = t.device

let tag t = Device.name t.device ^ ":" ^ string_of_int t.segid

let leaf_cap t = (Page.size - items_base) / t.isize
let internal_cap t = (Page.size - items_base) / (t.isize + 4)

let with_page t blkno f = Bufcache.with_page t.cache t.device ~segid:t.segid ~blkno f
let dirty t blkno = Bufcache.mark_dirty t.cache t.device ~segid:t.segid ~blkno

(* ---- items: key bytes ++ big-endian value ---- *)

let item_of t ~key ~value =
  if String.length key <> t.klen then
    invalid_arg
      (Printf.sprintf "Btree: key is %d bytes, tree wants %d" (String.length key) t.klen);
  let b = Bytes.create t.isize in
  Bytes.blit_string key 0 b 0 t.klen;
  Bytes.set_int64_be b t.klen value;
  Bytes.unsafe_to_string b

let item_key t item = String.sub item 0 t.klen
let item_value t item = Bytes.get_int64_be (Bytes.of_string item) t.klen

(* ---- meta page ---- *)

let read_meta t =
  with_page t 0 (fun p ->
      if Page.get_u16 p m_magic <> meta_magic then failwith "Btree: bad meta page";
      (Page.get_u32 p m_root, Page.get_u16 p m_height, Int64.to_int (Page.get_i64 p m_count)))

let write_meta t ~root ~height ~count =
  with_page t 0 (fun p ->
      Page.set_u16 p m_magic meta_magic;
      Page.set_u16 p m_klen t.klen;
      Page.set_u32 p m_root root;
      Page.set_u16 p m_height height;
      Page.set_i64 p m_count (Int64.of_int count));
  dirty t 0


(* ---- node primitives ---- *)

let alloc_node t ~level =
  let blkno = Bufcache.new_block t.cache t.device ~segid:t.segid in
  with_page t blkno (fun p ->
      Page.set_u16 p n_magic node_magic;
      Page.set_u16 p n_level level;
      Page.set_u16 p n_nitems 0;
      Page.set_u32 p n_next no_block;
      Page.set_u32 p n_child0 no_block);
  dirty t blkno;
  blkno

let node_level p = Page.get_u16 p n_level
let node_nitems p = Page.get_u16 p n_nitems

let leaf_item t p i = Page.get_string p (items_base + (i * t.isize)) t.isize

let leaf_set_item t p i item =
  Page.set_string p (items_base + (i * t.isize)) item

let int_entry_size t = t.isize + 4
let int_item t p i = Page.get_string p (items_base + (i * int_entry_size t)) t.isize
let int_child t p i = Page.get_u32 p (items_base + (i * int_entry_size t) + t.isize)

let int_set_entry t p i ~item ~child =
  Page.set_string p (items_base + (i * int_entry_size t)) item;
  Page.set_u32 p (items_base + (i * int_entry_size t) + t.isize) child

(* First index whose item is >= target (binary search). *)
let lower_bound n get target =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare (get mid) target < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* The entry count lives in memory: updating the meta page per insert
   would dirty block 0 on every operation and distort the I/O model.
   After attach (or crash) it is recounted from the leaves on demand. *)
let bump_count t delta = if t.mem_count >= 0 then t.mem_count <- t.mem_count + delta

let rec count_leaves t blkno acc =
  let n, next = with_page t blkno (fun p -> (node_nitems p, Page.get_u32 p n_next)) in
  if next = no_block then acc + n else count_leaves t next (acc + n)

let leftmost_leaf t =
  let root, _, _ = read_meta t in
  let rec descend blkno =
    let level = with_page t blkno node_level in
    if level = 0 then blkno
    else descend (with_page t blkno (fun p -> Page.get_u32 p n_child0))
  in
  descend root

let count t =
  if t.mem_count < 0 then t.mem_count <- count_leaves t (leftmost_leaf t) 0;
  t.mem_count
  + (match t.pending with [] -> 0 | ps -> List.length (List.sort_uniq String.compare ps))

let pending_count t = List.length t.pending

let height t =
  let _, h, _ = read_meta t in
  h

(* ---- construction ---- *)

let create ~cache ~device ~klen =
  if klen < 1 || klen > 64 then invalid_arg "Btree.create: klen out of range";
  let segid = Device.create_segment device in
  let t =
    { cache; device; segid; klen; isize = klen + 8; mem_count = 0; pending = [];
      hook_registered = false }
  in
  let meta_blk = Bufcache.new_block cache device ~segid in
  assert (meta_blk = 0);
  let root = alloc_node t ~level:0 in
  write_meta t ~root ~height:1 ~count:0;
  t

let attach ~cache ~device ~segid =
  let probe =
    { cache; device; segid; klen = 8; isize = 16; mem_count = -1; pending = [];
      hook_registered = false }
  in
  let klen =
    with_page probe 0 (fun p ->
        if Page.get_u16 p m_magic <> meta_magic then failwith "Btree.attach: bad meta page";
        Page.get_u16 p m_klen)
  in
  { cache; device; segid; klen; isize = klen + 8; mem_count = -1; pending = [];
    hook_registered = false }

let crash t =
  t.mem_count <- -1;
  (* The overlay is volatile by definition: staged-but-unapplied inserts
     die with the machine.  Recovery replays the committed ones from the
     logged intents. *)
  t.pending <- [];
  t.hook_registered <- false

let reinit t =
  (* Point the meta page at a fresh empty leaf.  The old nodes are left
     behind in the segment (block reclamation would need a free list);
     rebuilds are rare — crash recovery only — so the leak is accepted. *)
  let root = alloc_node t ~level:0 in
  t.mem_count <- 0;
  t.pending <- [];
  t.hook_registered <- false;
  write_meta t ~root ~height:1 ~count:0

(* ---- descent ---- *)

(* Child to follow for [item]: the child whose separator is the greatest
   one <= item, or child0 if item precedes all separators. *)
let find_child t blkno item =
  with_page t blkno (fun p ->
      let n = node_nitems p in
      let pos = lower_bound n (fun i -> int_item t p i) item in
      (* pos = first separator >= item.  Exact match routes right (the
         separator is the first item of its child). *)
      let pos =
        if pos < n && String.equal (int_item t p pos) item then pos + 1 else pos
      in
      if pos = 0 then Page.get_u32 p n_child0 else int_child t p (pos - 1))

let rec find_leaf t blkno item =
  let level = with_page t blkno node_level in
  if level = 0 then blkno else find_leaf t (find_child t blkno item) item

(* ---- insertion ---- *)

type promotion = (string * int) option (* separator item, new right sibling *)

let insert_leaf t blkno item : promotion option =
  (* Some promo = inserted (with optional split); None = duplicate no-op. *)
  with_page t blkno (fun p ->
      let n = node_nitems p in
      let pos = lower_bound n (fun i -> leaf_item t p i) item in
      if pos < n && String.equal (leaf_item t p pos) item then None
      else if n < leaf_cap t then begin
        let raw = Page.raw p in
        Bytes.blit raw (items_base + (pos * t.isize)) raw
          (items_base + ((pos + 1) * t.isize))
          ((n - pos) * t.isize);
        leaf_set_item t p pos item;
        Page.set_u16 p n_nitems (n + 1);
        dirty t blkno;
        Some None
      end
      else begin
        (* Split: gather items with the new one in place, distribute. *)
        let all = Array.make (n + 1) "" in
        for i = 0 to pos - 1 do
          all.(i) <- leaf_item t p i
        done;
        all.(pos) <- item;
        for i = pos to n - 1 do
          all.(i + 1) <- leaf_item t p i
        done;
        let total = n + 1 in
        let left_n = total / 2 in
        let right_n = total - left_n in
        let right = alloc_node t ~level:0 in
        let old_next = Page.get_u32 p n_next in
        with_page t right (fun rp ->
            for i = 0 to right_n - 1 do
              leaf_set_item t rp i all.(left_n + i)
            done;
            Page.set_u16 rp n_nitems right_n;
            Page.set_u32 rp n_next old_next);
        dirty t right;
        for i = 0 to left_n - 1 do
          leaf_set_item t p i all.(i)
        done;
        Page.set_u16 p n_nitems left_n;
        Page.set_u32 p n_next right;
        dirty t blkno;
        Some (Some (all.(left_n), right))
      end)

let insert_internal t blkno ~sep ~right : promotion =
  with_page t blkno (fun p ->
      let n = node_nitems p in
      let pos = lower_bound n (fun i -> int_item t p i) sep in
      if n < internal_cap t then begin
        let esz = int_entry_size t in
        let raw = Page.raw p in
        Bytes.blit raw (items_base + (pos * esz)) raw
          (items_base + ((pos + 1) * esz))
          ((n - pos) * esz);
        int_set_entry t p pos ~item:sep ~child:right;
        Page.set_u16 p n_nitems (n + 1);
        dirty t blkno;
        None
      end
      else begin
        let entries = Array.make (n + 1) ("", 0) in
        for i = 0 to pos - 1 do
          entries.(i) <- (int_item t p i, int_child t p i)
        done;
        entries.(pos) <- (sep, right);
        for i = pos to n - 1 do
          entries.(i + 1) <- (int_item t p i, int_child t p i)
        done;
        let total = n + 1 in
        let mid = total / 2 in
        let promoted_item, promoted_child = entries.(mid) in
        let right_blk = alloc_node t ~level:(node_level p) in
        with_page t right_blk (fun rp ->
            Page.set_u32 rp n_child0 promoted_child;
            let rn = total - mid - 1 in
            for i = 0 to rn - 1 do
              let item, child = entries.(mid + 1 + i) in
              int_set_entry t rp i ~item ~child
            done;
            Page.set_u16 rp n_nitems rn);
        dirty t right_blk;
        for i = 0 to mid - 1 do
          let item, child = entries.(i) in
          int_set_entry t p i ~item ~child
        done;
        Page.set_u16 p n_nitems mid;
        dirty t blkno;
        Some (promoted_item, right_blk)
      end)

let rec insert_at t blkno item : promotion option =
  let level = with_page t blkno node_level in
  if level = 0 then insert_leaf t blkno item
  else begin
    let child = find_child t blkno item in
    match insert_at t child item with
    | None -> None
    | Some None -> Some None
    | Some (Some (sep, right)) -> Some (insert_internal t blkno ~sep ~right)
  end

let insert_item t item =
  let root, hgt, cnt = read_meta t in
  match insert_at t root item with
  | None -> () (* exact duplicate *)
  | Some promo ->
    bump_count t 1;
    (match promo with
    | None -> ()
    | Some (sep, right) ->
      let new_root = alloc_node t ~level:hgt in
      with_page t new_root (fun p ->
          Page.set_u32 p n_child0 root;
          int_set_entry t p 0 ~item:sep ~child:right;
          Page.set_u16 p n_nitems 1);
      dirty t new_root;
      write_meta t ~root:new_root ~height:(hgt + 1) ~count:cnt)

let insert t ~key ~value =
  Relstore.Cpu_model.charge_index_op (Device.clock t.device);
  insert_item t (item_of t ~key ~value)

(* ---- sorted-run bulk insert ---- *)

(* Descent for bulk loading: like [find_leaf], but track the tightest
   upper separator on the path so the caller knows which of its sorted
   run still belongs to this leaf (exclusive bound; exact separator
   matches route right, so every in-leaf item is strictly below it). *)
let rec descend_bounded t blkno item hi =
  let level = with_page t blkno node_level in
  if level = 0 then (blkno, hi)
  else begin
    let child, hi =
      with_page t blkno (fun p ->
          let n = node_nitems p in
          let pos = lower_bound n (fun i -> int_item t p i) item in
          let pos =
            if pos < n && String.equal (int_item t p pos) item then pos + 1 else pos
          in
          let child = if pos = 0 then Page.get_u32 p n_child0 else int_child t p (pos - 1) in
          let hi = if pos < n then Some (int_item t p pos) else hi in
          (child, hi))
    in
    descend_bounded t child item hi
  end

(* Insert as many leading items of the sorted run as fit this leaf
   in place (no splits); returns the rest.  Items equal to an existing
   entry are duplicates and skipped. *)
let fill_leaf t leaf hi items =
  let in_bound item =
    match hi with None -> true | Some h -> String.compare item h < 0
  in
  let rec go items =
    match items with
    | [] -> []
    | item :: rest ->
      if not (in_bound item) then items
      else begin
        let status =
          with_page t leaf (fun p ->
              let n = node_nitems p in
              let pos = lower_bound n (fun i -> leaf_item t p i) item in
              if pos < n && String.equal (leaf_item t p pos) item then `Dup
              else if n >= leaf_cap t then `Full
              else begin
                let raw = Page.raw p in
                Bytes.blit raw (items_base + (pos * t.isize)) raw
                  (items_base + ((pos + 1) * t.isize))
                  ((n - pos) * t.isize);
                leaf_set_item t p pos item;
                Page.set_u16 p n_nitems (n + 1);
                `Inserted
              end)
        in
        match status with
        | `Inserted ->
          dirty t leaf;
          bump_count t 1;
          go rest
        | `Dup -> go rest
        | `Full -> items
      end
  in
  go items

(* One descent per touched leaf: consecutive keys of the sorted run land
   in the same leaf, so a batch of n inserts into k leaves costs k
   descents instead of n — the paper's interleaved-descent overhead. *)
let bulk_insert_sorted t sorted =
  let rec go items =
    match items with
    | [] -> ()
    | first :: rest ->
      Relstore.Cpu_model.charge_index_op (Device.clock t.device);
      let root, _, _ = read_meta t in
      let leaf, hi = descend_bounded t root first None in
      let remaining = fill_leaf t leaf hi items in
      if remaining == items then begin
        (* Leaf is full: push the first item through the splitting path,
           then resume the run (the split changed the leaf map). *)
        insert_item t first;
        go rest
      end
      else go remaining
  in
  go sorted

let bulk_insert t entries =
  let items = List.map (fun (key, value) -> item_of t ~key ~value) entries in
  bulk_insert_sorted t (List.sort_uniq String.compare items)

(* ---- deferred (overlay) inserts ---- *)

let apply_pending t =
  t.hook_registered <- false;
  match t.pending with
  | [] -> ()
  | items ->
    t.pending <- [];
    bulk_insert_sorted t (List.sort_uniq String.compare items)

let insert_logged t txn ~key ~value =
  if Relstore.Txn.defers_index txn then begin
    (* Same CPU charge as the eager path; the I/O saving comes from the
       batched leaf touches at apply time. *)
    Relstore.Cpu_model.charge_index_op (Device.clock t.device);
    let item = item_of t ~key ~value in
    if not t.hook_registered then begin
      t.hook_registered <- true;
      Relstore.Txn.register_apply_hook (Relstore.Txn.manager txn) (fun () -> apply_pending t)
    end;
    t.pending <- item :: t.pending;
    Relstore.Txn.log_index_intent txn ~tree:(tag t) ~key ~value
  end
  else insert t ~key ~value

(* ---- deletion (lazy: leaves may become underfull or empty) ---- *)

let delete t ~key ~value =
  let item = item_of t ~key ~value in
  if List.exists (String.equal item) t.pending then begin
    (* Still staged: the entry dies before ever touching a page.  (Its
       logged intent, if any, is only replayed for committed xids whose
       pages were lost — and the deleting paths force the overlay down
       first, so this branch is a pre-apply un-stage, not a lost delete.) *)
    t.pending <- List.filter (fun it -> not (String.equal it item)) t.pending;
    true
  end
  else begin
  let root, _, _ = read_meta t in
  let leaf = find_leaf t root item in
  let removed =
    with_page t leaf (fun p ->
        let n = node_nitems p in
        let pos = lower_bound n (fun i -> leaf_item t p i) item in
        if pos < n && String.equal (leaf_item t p pos) item then begin
          let raw = Page.raw p in
          Bytes.blit raw
            (items_base + ((pos + 1) * t.isize))
            raw
            (items_base + (pos * t.isize))
            ((n - pos - 1) * t.isize);
          Page.set_u16 p n_nitems (n - 1);
          dirty t leaf;
          true
        end
        else false)
  in
  if removed then bump_count t (-1);
  removed
  end

(* ---- scans ---- *)

let scan_range t ~lo ~hi f =
  let lo_item = item_of t ~key:lo ~value:Int64.min_int in
  (* min_int's BE encoding starts 0x80...; we want the smallest suffix, so
     use explicit zero bytes instead. *)
  let lo_item = item_key t lo_item ^ String.make 8 '\x00' in
  let hi_item = hi ^ String.make 8 '\xff' in
  (* Merge the deferred overlay in key order: staged entries are visible
     to readers exactly as eagerly inserted ones would be. *)
  let overlay =
    match t.pending with
    | [] -> ref []
    | ps ->
      ref
        (List.sort_uniq String.compare
           (List.filter
              (fun it ->
                String.compare it lo_item >= 0 && String.compare it hi_item <= 0)
              ps))
  in
  let visit item = f (item_key t item) (item_value t item) in
  let emit item =
    (* Drain staged items ordered before this tree item; an exact match
       is the same entry staged twice — tree copy wins. *)
    let rec drain () =
      match !overlay with
      | p :: rest when String.compare p item < 0 ->
        overlay := rest;
        visit p;
        drain ()
      | p :: rest when String.equal p item -> overlay := rest
      | _ -> ()
    in
    drain ();
    visit item
  in
  let root, _, _ = read_meta t in
  let leaf = ref (find_leaf t root lo_item) in
  let stop = ref false in
  while (not !stop) && !leaf <> no_block do
    let batch = ref [] in
    let next =
      with_page t !leaf (fun p ->
          let n = node_nitems p in
          for i = 0 to n - 1 do
            let item = leaf_item t p i in
            if String.compare item lo_item >= 0 then
              if String.compare item hi_item <= 0 then batch := item :: !batch
              else stop := true
          done;
          Page.get_u32 p n_next)
    in
    List.iter emit (List.rev !batch);
    leaf := next
  done;
  (* Staged entries beyond the last in-range tree item. *)
  List.iter visit !overlay

let lookup t ~key =
  Relstore.Cpu_model.charge_index_op (Device.clock t.device);
  let acc = ref [] in
  scan_range t ~lo:key ~hi:key (fun _ v -> acc := v :: !acc);
  List.rev !acc

let iter t f =
  scan_range t ~lo:(String.make t.klen '\x00') ~hi:(String.make t.klen '\xff') f

let min_entry t =
  let result = ref None in
  (try
     iter t (fun k v ->
         result := Some (k, v);
         raise Exit)
   with Exit -> ());
  !result

let max_entry t =
  let result = ref None in
  iter t (fun k v -> result := Some (k, v));
  !result

(* ---- structural audit ---- *)

let check_invariants t =
  let root, hgt, _ = read_meta t in
  (* Recount via the leaf chain rather than trusting the volatile cached
     count — after a crash the cache is stale by design, and the audit's
     job is to compare chain vs tree walk, two independent traversals. *)
  let cnt = count_leaves t (leftmost_leaf t) 0 in
  let errors = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* Walk the tree checking levels and in-node order; count leaf items. *)
  let leaf_items = ref 0 in
  let rec walk blkno expected_level ~lo ~hi =
    with_page t blkno (fun p ->
        if Page.get_u16 p n_magic <> node_magic then fail "block %d: bad node magic" blkno;
        let level = node_level p in
        if level <> expected_level then
          fail "block %d: level %d, expected %d" blkno level expected_level;
        let n = node_nitems p in
        let get i = if level = 0 then leaf_item t p i else int_item t p i in
        for i = 0 to n - 2 do
          if String.compare (get i) (get (i + 1)) >= 0 then
            fail "block %d: items %d/%d out of order" blkno i (i + 1)
        done;
        for i = 0 to n - 1 do
          let item = get i in
          (match lo with
          | Some l when String.compare item l < 0 ->
            fail "block %d: item %d below subtree bound" blkno i
          | _ -> ());
          match hi with
          | Some h when String.compare item h >= 0 ->
            fail "block %d: item %d above subtree bound" blkno i
          | _ -> ()
        done;
        if level = 0 then leaf_items := !leaf_items + n
        else begin
          let children =
            Page.get_u32 p n_child0
            :: List.init n (fun i -> int_child t p i)
          in
          let bounds =
            (* child i is bounded by (sep_{i-1}, sep_i) *)
            List.init (n + 1) (fun i ->
                let l = if i = 0 then lo else Some (get (i - 1)) in
                let h = if i = n then hi else Some (get i) in
                (l, h))
          in
          List.iter2 (fun child (l, h) -> walk child (level - 1) ~lo:l ~hi:h) children bounds
        end)
  in
  walk root (hgt - 1) ~lo:None ~hi:None;
  if !leaf_items <> cnt then
    fail "leaf chain holds %d items but tree walk found %d" cnt !leaf_items
  else if !errors = [] then t.mem_count <- cnt;
  (* Leaf chain must be globally sorted. *)
  let prev = ref None in
  iter t (fun k v ->
      let item = item_of t ~key:k ~value:v in
      (match !prev with
      | Some p when String.compare p item >= 0 -> fail "leaf chain out of order"
      | _ -> ());
      prev := Some item);
  match !errors with [] -> Ok () | e :: _ -> Error e
