test/test_crash_recovery.ml: Alcotest Benchlib Bytes Faultsim Int64 Invfs List Pagestore Printf Relstore Simclock String Sys
