(** Shared buffer cache of 8 KB pages: O(1) scan-resistant replacement
    plus sequential read-ahead.

    POSTGRES keeps an in-memory shared cache of recently used data pages;
    pages are evicted in LRU order regardless of originating device, and
    dirty pages are written back before eviction (paper, "Cache
    Management").  The shipped size was 64 buffers; Berkeley ran 300 — both
    are interesting points for the cache-size ablation bench.

    Replacement is a two-tier (midpoint-insertion) LRU over intrusive
    doubly-linked lists: every touch, eviction, and unpin is O(1), and a
    per-(device, segment) residency index makes {!flush_segment},
    {!invalidate_segment}, and the scrubber's bookkeeping proportional to
    the segment, not the pool.  New pages enter a probationary {e cold}
    tier (3/8 of the pool) and are promoted to the {e hot} tier only when
    re-touched after aging past the install burst — so a one-pass 25 MB
    sequential scan recycles the cold tier and cannot flush the working
    set out of a 300-page pool.

    The cache detects ascending access runs per segment (or is told
    outright via {!hint_sequential}) and prefetches the next window of
    blocks through the {!Resilient} layer as one batched burst: the first
    block pays the full positioning + per-request cost, continuation
    blocks pay transfer only ({!Device.read_block_cont}).

    Pages are pinned while in use; only unpinned pages are eviction
    victims.  {!crash} drops the whole cache without write-back, which is
    how uncommitted work disappears across a simulated failure. *)

type t

val create :
  ?capacity:int ->
  ?os_cache_blocks:int ->
  ?readahead_window:int ->
  ?promote_age_s:float ->
  unit ->
  t
(** [capacity] in pages, default 300 (the Berkeley configuration).
    [os_cache_blocks] sizes the UNIX file-system buffer cache that sits
    {e under} the DBMS cache for magnetic-disk devices (paper: "the file
    system buffer cache is a secondary buffer cache"); default 16384
    pages (the 128 MB evaluation machine cached whole benchmark files).
    POSTGRES 4.0.1 wrote pages to this cache without forcing them, so
    DBMS-level write-backs cost a copy, not a platter write.
    [readahead_window] bounds how many blocks one read-ahead burst
    fetches (default 8; 0 disables read-ahead).  [promote_age_s] is the
    simulated age a cold page must reach before a re-touch promotes it to
    the hot tier (default 50 ms — touches within one operation's install
    burst do not count as reuse). *)

val capacity : t -> int

val get : t -> Device.t -> segid:int -> blkno:int -> Page.t
(** Pin a page and return it.  The caller must {!unpin} it (or use
    {!with_page}).  The returned page is the cache's copy: mutations are
    visible to other readers and must be followed by {!mark_dirty}.  A
    miss that extends a detected sequential run (or follows
    {!hint_sequential}) triggers a read-ahead burst behind it. *)

val unpin : t -> Device.t -> segid:int -> blkno:int -> unit

val mark_dirty : t -> Device.t -> segid:int -> blkno:int -> unit
(** Record that a pinned page was modified so eviction/flush writes it
    back.  Raises [Invalid_argument] if the page is not resident. *)

val with_page : t -> Device.t -> segid:int -> blkno:int -> (Page.t -> 'a) -> 'a
(** [with_page c dev ~segid ~blkno f] pins, applies [f], unpins (also on
    exception). *)

val new_block : t -> Device.t -> segid:int -> int
(** Extend the segment by one block on the device and install the zeroed
    page in the cache (unpinned, clean).  Returns the new block number. *)

val hint_sequential : t -> Device.t -> segid:int -> unit
(** Declare that upcoming accesses to this segment are an ascending scan,
    arming read-ahead from the first miss instead of waiting for a
    two-block run.  The hint is sticky until a non-sequential access to
    the segment cancels it.  Heap scans and multi-chunk file reads call
    this. *)

val set_cold_only : t -> Device.t -> segid:int -> unit
(** Pin the segment's pages to the probationary cold tier: hits never
    promote them to hot.  Archive (WORM) segments use this so faulting
    history through the cache cannot evict the hot working set.  The flag
    is volatile (lost on {!crash}); owners re-arm it during recovery. *)

val is_cold_only : t -> Device.t -> segid:int -> bool

val flush : t -> unit
(** Write back every dirty page (pages stay resident and become clean).
    Transaction commit uses this to make updates durable.  Write-back
    order is deterministic: (device name, segid, blkno) ascending —
    crash-sweep fault injection depends on it. *)

val flush_segment : t -> Device.t -> segid:int -> unit
(** Write back dirty pages of one segment only (blkno ascending).
    O(resident pages of that segment). *)

val invalidate_segment : t -> Device.t -> segid:int -> unit
(** Discard resident pages of a dropped segment without write-back.
    O(resident pages of that segment). *)

val set_writeback_hook :
  t -> (device:string -> segid:int -> blkno:int -> unit) option -> unit
(** Install (or clear) a hook invoked just before each dirty page is
    written back (on {!flush}, {!flush_segment}, or eviction).  Fault
    plans use it to crash or fail mid-flush at write-back granularity —
    the hook may raise, in which case the page stays dirty and the
    write-back does not happen. *)

val crash : t -> unit
(** Drop all cached pages without write-back — volatile memory is gone.
    The OS buffer cache is volatile too and is cleared with it.
    Lifetime counters survive (they describe the run, not the pool). *)

val os_hits : t -> int
(** Reads absorbed by the secondary (file-system) cache. *)

val gets : t -> int
(** Total {!get} calls.  Counter coherence invariant:
    [gets = hits + misses], always. *)

val hits : t -> int
(** Demand accesses served from the pool (includes hits on prefetched
    pages — see {!readahead_hits}). *)

val misses : t -> int
val writebacks : t -> int
val evictions : t -> int

val readaheads : t -> int
(** Blocks fetched speculatively by read-ahead bursts. *)

val readahead_hits : t -> int
(** Demand accesses that were the {e first} touch of a page read-ahead
    brought in — the measure of prediction accuracy.  A strict subset of
    {!hits} (an annotation on a hit, not a third outcome):
    [readahead_hits <= hits] and [readahead_hits <= readaheads]. *)

val resident : t -> int
(** Current number of resident pages. *)

(** {1 Counter snapshots} *)

type stats = {
  s_gets : int;  (** [s_gets = s_hits + s_misses] *)
  s_hits : int;
  s_misses : int;
  s_os_hits : int;
  s_writebacks : int;
  s_evictions : int;
  s_readaheads : int;
  s_readahead_hits : int;  (** subset of [s_hits] *)
}

val stats : t -> stats
(** Snapshot of all lifetime counters, for fsck / crash-harness reports
    and the benchmark emitter. *)

val stats_to_string : stats -> string
(** One line, [key=value] pairs. *)
