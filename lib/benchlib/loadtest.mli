(** Open-loop load harness: Zipf traffic, saturation curves, p99 SLOs —
    with a differential oracle riding along.

    Closed-loop benchmarks issue the next request only after the
    previous reply, so offered load can never exceed capacity and
    overload behaviour is invisible by construction.  This harness is
    {e open-loop}: Poisson arrivals on the simulated clock decide when
    each request arrives, whether or not the server has kept up, so
    queueing delay is measured (completion − arrival), not hidden.
    A closed-loop calibration prefix estimates service capacity; each
    sweep level then offers [factor × capacity], which keeps the
    throughput knee inside the swept range.

    Traffic: client sessions grouped into tenants (a directory and a
    latency histogram each), Zipf-distributed file popularity over the
    growing population, a read/write/create/time-travel mix, and a
    slice of multi-op transactions that hold two-phase locks across
    other sessions' arrivals — lock conflicts under load surface as
    EAGAIN/EDEADLK/ETIMEDOUT and are counted, aborted cleanly, and
    excluded from the oracle.

    Correctness: an oid-keyed oracle (the {!Nettest} pattern, without
    fault injection) shadows every mutation with per-session overlays
    for open transactions; reads are checked mid-flight, per-level
    snapshots feed time-travel checks, and full-tree walks verify
    convergence.  Everything — schedule, payloads, outcome — is a pure
    function of the seed. *)

type config = {
  clients : int;  (** sessions, grouped into... *)
  tenants : int;  (** ...this many tenants (dirs + latency accounting) *)
  initial_files : int;
  file_bytes : int;  (** initial size of each pre-created file *)
  max_file_bytes : int;
  ops_per_level : int;
  calibration_ops : int;  (** closed-loop prefix that estimates capacity *)
  load_factors : float list;  (** offered = factor × calibrated capacity *)
  zipf_theta : float;
  write_pct : int;
  create_pct : int;
  time_travel_pct : int;  (** remainder of 100 is reads *)
  txn_every : int;  (** ~1 in N ops opens a transaction; 0 disables *)
  txn_len : int;  (** mutations inside each transaction *)
  write_bytes : int;  (** max bytes per write *)
  slo_p99_s : float;  (** the per-level p99 SLO a knee can trip on *)
  verify_each_level : bool;  (** full-tree walk after every level *)
  trace : bool;
  deadline_s : float option;
      (** per-op deadline, relative to the op's arrival, propagated to
          the server.  [None] (the seed behaviour) sends no deadlines
          and the system degrades by queueing alone. *)
  lock_wait_s : float;  (** server: how long parked requests may wait *)
  run_cap : int;  (** server: run-queue + parked bound *)
  park_cap : int;  (** server: parked-request bound *)
}

val default_config : config

val quick_config : config
(** Small enough for the seeded sweep that rides [dune runtest]. *)

(** {1 The operation schedule} *)

type kind = Read | Write | Create | Time_travel | Begin | Commit

val kind_to_string : kind -> string

type op = {
  o_idx : int;
  o_client : int;
  o_arrival : float;  (** seconds from level start *)
  o_kind : kind;
  o_u : float;  (** popularity draw, inverted against Zipf weights later *)
  o_seed : int64;  (** per-op payload rng seed *)
}

val schedule : config:config -> seed:int64 -> rate:float -> ops:int -> op list
(** Pure: arrivals (exponential inter-arrivals at [rate]), sessions,
    kinds (with per-session transaction grouping), popularity draws and
    payload seeds, all drawn up front from [seed]. *)

val schedule_render : op list -> string
(** Byte-exact serialization (one line per op). *)

val schedule_digest : config:config -> seed:int64 -> rate:float -> ops:int -> string
(** Hex digest of {!schedule_render}; the deterministic-replay test
    asserts it is a function of the arguments alone. *)

(** {1 Results} *)

type level = {
  l_factor : float;
  l_offered_ops_s : float;  (** target arrival rate λ *)
  l_offered_realized_ops_s : float;  (** ops / realized arrival span *)
  l_achieved_ops_s : float;
      (** completed ops / simulated time: the queue-drain rate.  Equals
          realized offered while the server keeps up; falls below past
          saturation.  Always ≤ [l_offered_realized_ops_s]. *)
  l_ops : int;
  l_applied : int;  (** ops whose effects committed (goodput) *)
  l_lock_skips : int;
  l_p50_s : float;
  l_p95_s : float;
  l_p99_s : float;
  l_mean_s : float;
  l_max_wait_queue : int;  (** [lock.wait_queue] probe high-water mark *)
  l_peak_link_depth : int;  (** deepest per-link message backlog *)
  l_tenant_p99_s : float array;
  l_shed_deadline : int;
      (** ops refused, client- or server-side, because their deadline
          passed (clean, definitive rejections) *)
  l_shed_overload : int;  (** ops refused by admission control ([EBUSY]) *)
  l_admitted : int;  (** ops not shed (lock skips included) *)
  l_admitted_p99_s : float;  (** p99 latency over admitted ops only *)
  l_slo_goodput_ops_s : float;
      (** applied ops that also met the SLO, per second — the number an
          overloaded-but-protected server holds near capacity *)
}

type outcome = {
  seed : int64;
  capacity_ops_s : float;  (** closed-loop calibration estimate *)
  levels : level list;
  knee_offered_ops_s : float;
      (** realized offered rate of the first level that saturated
          (achieved < 90% of offered) or blew the p99 SLO; the last
          level's if the curve never bent. *)
  knee_reason : string;
  slo_p99_s : float;
  ops_total : int;
  applied_total : int;
  lock_skips : int;
  commits : int;
  aborts : int;
  time_travel_checks : int;
  full_verifies : int;
  mismatches : string list;  (** empty = oracle-equivalent *)
  shed_deadline : int;
  shed_overload : int;
}

val level_to_string : level -> string
val outcome_to_string : outcome -> string

val run : ?config:config -> seed:int64 -> unit -> outcome
(** Build a fresh system (server, netsim links, client sessions, tenant
    dirs, seed population), calibrate, sweep every load factor, verify.
    Deterministic: the same seed and config produce the same outcome. *)
