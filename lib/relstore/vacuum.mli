(** The vacuum cleaner: garbage collection and record archiving.

    "Periodically, obsolete records must be garbage-collected from the
    database, and either moved elsewhere or physically deleted.  If time
    travel is desired, the records must be saved forever somewhere."
    (paper, "The No-Overwrite Storage Manager").

    A record version is {e obsolete} at horizon [h] when its deleter
    committed at or before [h]; a version whose inserter aborted is pure
    garbage.  In [`Archive] mode obsolete versions move (stamps intact) to
    the heap attached with {!Heap.set_archive} — typically on the WORM
    jukebox — so [As_of] scans still see them; in [`Discard] mode history
    before the horizon is lost, which is what POSTGRES does for relations
    whose users "have no interest in maintaining history". *)

type stats = {
  scanned : int;  (** record versions examined *)
  archived : int;  (** moved to the archive heap *)
  discarded : int;  (** physically removed without archiving *)
  pages_compacted : int;
}

exception Busy of Xid.t list
(** Raised by {!run} when transactions are in progress: the stop-the-world
    sweep rewrites pages without taking locks, so it demands quiescence.
    Carries the active xids.  The file-system layer surfaces this as
    [EBUSY]; live systems use {!step} instead. *)

val run :
  Heap.t ->
  log:Status_log.t ->
  horizon:int64 ->
  mode:[ `Archive | `Discard ] ->
  ?on_remove:(Heap.record -> unit) ->
  unit ->
  stats
(** Sweep the whole heap in one stop-the-world pass.  [on_remove] fires
    for every version leaving the main heap (archived or discarded) so
    callers can fix index entries pointing at its TID.  [`Archive]
    requires an attached archive heap.  Raises {!Busy} if any transaction
    is active. *)

type step_stats = {
  s_scanned : int;
  s_archived : int;
  s_discarded : int;
  s_pages : int;  (** pages examined (0 when skipped) *)
  s_compacted : int;
  s_next_block : int;  (** cursor for the next step *)
  s_wrapped : bool;  (** this step reached the end of the heap *)
  s_skipped : bool;  (** gave way to a writer; nothing was done *)
}

val step :
  Heap.t ->
  mgr:Txn.manager ->
  horizon:int64 ->
  mode:[ `Archive | `Discard ] ->
  ?on_remove:(Heap.record -> unit) ->
  start_block:int ->
  pages:int ->
  unit ->
  step_stats
(** One budgeted increment of the {e concurrent} vacuum: judge at most
    [pages] pages starting at [start_block], as two ordinary logged
    transactions — archive copies commit (and hit the platter) first,
    then page latches are taken, indexes fixed via [on_remove], and the
    doomed slots killed and compacted.  Safe under live traffic: the step
    holds the relation's {e shared} lock, so it excludes writers (giving
    way instantly — [s_skipped] — if one is active) but runs alongside
    readers; the caller must clamp [horizon] below every active
    transaction's start and every registered [As_of] lease (see
    {!Db.safe_horizon}).  A crash between the two commits at worst leaves
    archived duplicates, which {!Heap.scan} collapses; re-running the
    step is idempotent. *)
