lib/pagestore/switch.ml: Device Hashtbl List Printf Simclock
