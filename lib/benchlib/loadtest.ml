(* Open-loop load harness: saturation curves with a differential oracle.

   Every benchmark elsewhere in the repo is closed-loop — the next
   request is issued only after the previous reply, so offered load can
   never exceed service capacity and tail latency under overload is
   invisible by construction.  This harness is open-loop: a Poisson
   arrival process on the simulated clock decides when each request
   {e arrives}, independent of whether the server has kept up.  The
   engine executes arrivals in order; when the server falls behind, the
   clock at an op's start is already past its arrival time, and that
   queueing delay is charged to the op's latency (completion − arrival).
   Past saturation the backlog grows without bound and p99 explodes —
   which is exactly the signal a closed-loop run hides.

   Traffic shape: hundreds of client sessions grouped into tenants,
   each with its own directory and its own latency histogram; file
   popularity is Zipf over the population in creation order (old files
   are hot), so lock contention concentrates where it does in real
   file-server traces.  A slice of ops runs as multi-op transactions
   (begin … writes/creates … commit), so sessions hold two-phase locks
   across other sessions' arrivals and conflicts (EAGAIN / EDEADLK /
   ETIMEDOUT) appear under load exactly as the RPC layer reports them.

   The sweep calibrates first: a closed-loop prefix measures service
   capacity, then each level offers [factor × capacity] so the knee is
   always inside the swept range.  Correctness rides along: a
   Nettest-style oid-keyed oracle shadows every mutation (per-session
   overlays for open transactions), reads are checked against it
   mid-flight, snapshots feed time-travel checks, and a full-tree walk
   closes the run. *)

module OM = Map.Make (Int64)
module Rng = Simclock.Rng
module Fs = Invfs.Fs
module Errors = Invfs.Errors
module Device = Pagestore.Device
module Client = Remote.Client
module Server = Remote.Server
module Link = Netsim.Link
module Metrics = Obs.Metrics

type config = {
  clients : int; (* sessions, grouped into... *)
  tenants : int; (* ...this many tenants (dirs + latency accounting) *)
  initial_files : int;
  file_bytes : int; (* initial size of each pre-created file *)
  max_file_bytes : int;
  ops_per_level : int;
  calibration_ops : int; (* closed-loop prefix that estimates capacity *)
  load_factors : float list; (* offered = factor × calibrated capacity *)
  zipf_theta : float;
  write_pct : int;
  create_pct : int;
  time_travel_pct : int; (* remainder of 100 is reads *)
  txn_every : int; (* ~1 in N ops opens a transaction; 0 disables *)
  txn_len : int; (* mutations inside each transaction *)
  write_bytes : int; (* max bytes per write *)
  slo_p99_s : float; (* the per-level p99 SLO a knee can trip on *)
  verify_each_level : bool; (* full-tree walk after every level *)
  trace : bool;
  deadline_s : float option;
      (* per-op deadline, relative to the op's arrival: propagated to the
         server, which refuses work whose caller gave up.  None (the
         seed behaviour) sends no deadlines and degrades by queueing. *)
  lock_wait_s : float; (* server: how long parked requests may wait *)
  run_cap : int; (* server: run-queue + parked bound *)
  park_cap : int; (* server: parked-request bound *)
}

let default_config =
  {
    clients = 200;
    tenants = 8;
    initial_files = 64;
    file_bytes = 2048;
    max_file_bytes = 16 * 1024;
    ops_per_level = 500;
    calibration_ops = 80;
    load_factors = [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5 ];
    zipf_theta = 1.1;
    write_pct = 25;
    create_pct = 10;
    time_travel_pct = 5;
    txn_every = 12;
    txn_len = 3;
    write_bytes = 1024;
    slo_p99_s = 1.0;
    verify_each_level = true;
    trace = false;
    deadline_s = None;
    lock_wait_s = 0.;
    run_cap = 256;
    park_cap = 64;
  }

(* Small enough that a seeded sweep of it rides `dune runtest`. *)
let quick_config =
  {
    default_config with
    clients = 12;
    tenants = 3;
    initial_files = 12;
    file_bytes = 512;
    ops_per_level = 70;
    calibration_ops = 20;
    load_factors = [ 0.5; 1.0; 1.5; 2.0 ];
    write_bytes = 256;
  }

(* ---------- the operation schedule ----------

   Pure function of (config, seed, rate, ops): everything the engine
   will do is drawn here, up front — arrival instants (exponential
   inter-arrivals at [rate]), the session each op lands on, the op
   kind (with per-session transaction grouping), the popularity draw
   (a uniform in [0,1) inverted against the Zipf weights at execution
   time, when the population size is known), and a per-op payload
   seed.  [schedule_render] serializes it byte-for-byte, which is what
   the deterministic-replay test digests. *)

type kind = Read | Write | Create | Time_travel | Begin | Commit

let kind_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Create -> "create"
  | Time_travel -> "tt"
  | Begin -> "begin"
  | Commit -> "commit"

type op = {
  o_idx : int;
  o_client : int;
  o_arrival : float; (* seconds from level start *)
  o_kind : kind;
  o_u : float; (* popularity draw, inverted at execution time *)
  o_seed : int64; (* per-op payload rng seed *)
}

let schedule ~config ~seed ~rate ~ops =
  if rate <= 0. then invalid_arg "Loadtest.schedule: rate must be > 0";
  let rng = Rng.create seed in
  let txn_left = Array.make (max 1 config.clients) 0 in
  (* Sessions mid-transaction get half the traffic so their commits
     arrive within the level instead of the transaction squatting on its
     locks until the level-end abort.  (A client "thinks" about its open
     transaction; it does not go silent for 200 other sessions' turns.) *)
  let open_txns = ref [] in
  let t = ref 0. in
  List.init ops (fun i ->
      let u = Rng.float rng 1.0 in
      t := !t +. (-.log (1. -. u) /. rate);
      let c =
        match !open_txns with
        | [] -> Rng.int rng config.clients
        | opens ->
          if Rng.int rng 2 = 0 then List.nth opens (Rng.int rng (List.length opens))
          else Rng.int rng config.clients
      in
      let kind =
        if txn_left.(c) > 0 then begin
          txn_left.(c) <- txn_left.(c) - 1;
          if txn_left.(c) = 0 then begin
            open_txns := List.filter (fun x -> x <> c) !open_txns;
            Commit
          end
          else if Rng.int rng 100 < 70 then Write
          else Create
        end
        else if config.txn_every > 0 && Rng.int rng config.txn_every = 0 then begin
          (* the transaction's body plus its commit *)
          txn_left.(c) <- config.txn_len + 1;
          open_txns := c :: !open_txns;
          Begin
        end
        else begin
          let r = Rng.int rng 100 in
          if r < config.write_pct then Write
          else if r < config.write_pct + config.create_pct then Create
          else if r < config.write_pct + config.create_pct + config.time_travel_pct
          then Time_travel
          else Read
        end
      in
      {
        o_idx = i;
        o_client = c;
        o_arrival = !t;
        o_kind = kind;
        o_u = Rng.float rng 1.0;
        o_seed = Rng.next rng;
      })

let schedule_render sched =
  let buf = Buffer.create (64 * List.length sched) in
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "i=%d c=%d t=%.9f k=%s u=%.9f s=%Ld\n" o.o_idx o.o_client
           o.o_arrival (kind_to_string o.o_kind) o.o_u o.o_seed))
    sched;
  Buffer.contents buf

let schedule_digest ~config ~seed ~rate ~ops =
  Digest.to_hex (Digest.string (schedule_render (schedule ~config ~seed ~rate ~ops)))

(* ---------- results ---------- *)

type level = {
  l_factor : float;
  l_offered_ops_s : float; (* target arrival rate λ *)
  l_offered_realized_ops_s : float; (* ops / realized arrival span *)
  l_achieved_ops_s : float;
      (* completed ops / wall (simulated) time: the rate the server
         actually drained the queue.  Equals realized offered while the
         server keeps up; falls below it past saturation.  Lock skips
         complete too (their latency is real); [l_applied] separates
         goodput. *)
  l_ops : int;
  l_applied : int;
  l_lock_skips : int;
  l_p50_s : float;
  l_p95_s : float;
  l_p99_s : float;
  l_mean_s : float;
  l_max_wait_queue : int; (* lock.wait_queue high-water mark *)
  l_peak_link_depth : int; (* deepest per-link message backlog *)
  l_tenant_p99_s : float array;
  l_shed_deadline : int; (* ops refused because their deadline passed *)
  l_shed_overload : int; (* ops refused by admission control (EBUSY) *)
  l_admitted : int; (* ops not shed (includes lock skips) *)
  l_admitted_p99_s : float; (* p99 latency over admitted ops only *)
  l_slo_goodput_ops_s : float;
      (* applied ops that also met the SLO, per second: the protected
         number an overloaded server is supposed to hold near capacity *)
}

type outcome = {
  seed : int64;
  capacity_ops_s : float; (* closed-loop calibration estimate *)
  levels : level list;
  knee_offered_ops_s : float;
  knee_reason : string;
  slo_p99_s : float;
  ops_total : int;
  applied_total : int;
  lock_skips : int;
  commits : int;
  aborts : int;
  time_travel_checks : int;
  full_verifies : int;
  mismatches : string list;
  shed_deadline : int;
  shed_overload : int;
}

let level_to_string l =
  Printf.sprintf
    "  x%.2f offered=%.1f/s realized=%.1f/s achieved=%.1f/s ops=%d applied=%d \
     skips=%d shed=%d+%d adm_p99=%.1fms slo_good=%.1f/s p50=%.1fms p95=%.1fms \
     p99=%.1fms wq=%d qd=%d"
    l.l_factor l.l_offered_ops_s l.l_offered_realized_ops_s l.l_achieved_ops_s
    l.l_ops l.l_applied l.l_lock_skips l.l_shed_deadline l.l_shed_overload
    (1e3 *. l.l_admitted_p99_s) l.l_slo_goodput_ops_s (1e3 *. l.l_p50_s)
    (1e3 *. l.l_p95_s) (1e3 *. l.l_p99_s) l.l_max_wait_queue l.l_peak_link_depth

let outcome_to_string o =
  Printf.sprintf
    "seed=%Ld capacity=%.1f/s levels=%d knee=%.1f/s (%s) ops=%d applied=%d \
     skips=%d shed=%d+%d commits=%d aborts=%d tt_checks=%d verifies=%d \
     mismatches=%d\n%s"
    o.seed o.capacity_ops_s (List.length o.levels) o.knee_offered_ops_s
    o.knee_reason o.ops_total o.applied_total o.lock_skips o.shed_deadline
    o.shed_overload o.commits o.aborts o.time_travel_checks o.full_verifies
    (List.length o.mismatches)
    (String.concat "\n" (List.map level_to_string o.levels))

(* ---------- Zipf popularity over a growing population ----------

   Weight of the i-th created file is 1/(i+1)^θ: incremental cumulative
   sums support O(1) growth on create and O(log n) inversion of the
   schedule's pre-drawn uniform. *)

type zipf = { mutable cums : float array; mutable n : int; theta : float }

let zipf_create theta = { cums = Array.make 64 0.; n = 0; theta }

let zipf_add z =
  if z.n = Array.length z.cums then begin
    let bigger = Array.make (2 * z.n) 0. in
    Array.blit z.cums 0 bigger 0 z.n;
    z.cums <- bigger
  end;
  let prev = if z.n = 0 then 0. else z.cums.(z.n - 1) in
  z.cums.(z.n) <- prev +. (1. /. (float_of_int (z.n + 1) ** z.theta));
  z.n <- z.n + 1

let zipf_pick z u =
  if z.n = 0 then invalid_arg "Loadtest.zipf_pick: empty population";
  let target = u *. z.cums.(z.n - 1) in
  let lo = ref 0 and hi = ref (z.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cums.(mid) > target then hi := mid else lo := mid + 1
  done;
  !lo

(* ---------- oracle + harness state ---------- *)

type csess = {
  id : int;
  tenant : int;
  c : Client.t;
  mutable in_txn : bool;
  mutable ov_names : (string * int64) list; (* creates not yet committed *)
  mutable ov_files : bytes OM.t; (* oid -> content written in this txn *)
}

type popn = { mutable entries : (string * int64) array; mutable count : int }

let popn_add p path oid =
  if p.count = Array.length p.entries then begin
    let bigger = Array.make (max 64 (2 * p.count)) ("", 0L) in
    Array.blit p.entries 0 bigger 0 p.count;
    p.entries <- bigger
  end;
  p.entries.(p.count) <- (path, oid);
  p.count <- p.count + 1

type state = {
  cfg : config;
  db : Relstore.Db.t;
  fs : Fs.t;
  clock : Simclock.Clock.t;
  clients : csess array;
  zipf : zipf;
  pop : popn; (* committed files, creation order = zipf rank *)
  mutable files : bytes OM.t; (* oid -> committed contents *)
  mutable history : (int64 * (string * bytes) list) list; (* newest first *)
  mutable next_name : int;
  mutable next_oid : int64;
  mutable commits : int;
  mutable aborts : int;
  mutable lock_skips : int;
  mutable shed_deadline : int;
  mutable shed_overload : int;
  mutable time_travel_checks : int;
  mutable full_verifies : int;
  mutable mismatches : string list;
}

let max_mismatches = 50

let trace st fmt =
  Printf.ksprintf (fun msg -> if st.cfg.trace then Printf.eprintf "%s\n%!" msg) fmt

let mismatch st fmt =
  Printf.ksprintf
    (fun msg ->
      if List.length st.mismatches < max_mismatches then
        st.mismatches <- msg :: st.mismatches)
    fmt

let view_content st cs oid =
  match OM.find_opt oid cs.ov_files with
  | Some b -> b
  | None -> Option.value ~default:Bytes.empty (OM.find_opt oid st.files)

let bytes_diff a b =
  if Bytes.equal a b then None
  else begin
    let la = Bytes.length a and lb = Bytes.length b in
    let n = min la lb in
    let i = ref 0 in
    while !i < n && Bytes.get a !i = Bytes.get b !i do
      incr i
    done;
    Some (Printf.sprintf "lengths %d vs %d, first difference at byte %d" la lb !i)
  end

let splice cur ~off data =
  let len = Bytes.length cur and dlen = Bytes.length data in
  let out = Bytes.make (max len (off + dlen)) '\000' in
  Bytes.blit cur 0 out 0 len;
  Bytes.blit data 0 out off dlen;
  out

let clear_overlay cs =
  cs.in_txn <- false;
  cs.ov_names <- [];
  cs.ov_files <- OM.empty

let commit_overlay st cs =
  List.iter
    (fun (path, oid) ->
      popn_add st.pop path oid;
      zipf_add st.zipf)
    (List.rev cs.ov_names);
  OM.iter (fun oid b -> st.files <- OM.add oid b st.files) cs.ov_files;
  clear_overlay cs

(* Abandon the session's open transaction (if any) and its overlay.
   [c_abort] is deadline-exempt on the client and never shed by the
   server, so cleanup always lands. *)
let drop_txn st cs =
  if cs.in_txn then begin
    (try Client.c_abort cs.c with _ -> ());
    st.aborts <- st.aborts + 1
  end;
  clear_overlay cs

(* A conflicting two-phase lock is not a failure, it is the measurement:
   the op aborts cleanly, the oracle applies nothing. *)
let lock_skip st cs =
  st.lock_skips <- st.lock_skips + 1;
  drop_txn st cs

(* Deadline failures — the client's fail-fast and the server's recorded
   rejection — both say "deadline ..."; lock-wait expiries say "lock wait
   timed out ...".  Same [ETIMEDOUT], different stories. *)
let is_deadline_msg msg = String.length msg >= 8 && String.sub msg 0 8 = "deadline"

(* Clean overload refusals, classified by [run_op] — ops that catch
   [Fs_error] themselves must let these through. *)
let is_shed_exn = function
  | Errors.Fs_error (Errors.ETIMEDOUT, msg) -> is_deadline_msg msg
  | Errors.Fs_error (Errors.EBUSY, _) -> true
  | _ -> false

(* ---------- the ops ---------- *)

let pick_file st op =
  if st.pop.count = 0 then None
  else Some st.pop.entries.(zipf_pick st.zipf op.o_u)

let exec_read st cs op =
  match pick_file st op with
  | None -> ()
  | Some (path, oid) -> (
    trace st "s%d read %s" cs.id path;
    let expect = view_content st cs oid in
    let real = Client.read_whole_file cs.c path in
    match bytes_diff expect real with
    | None -> ()
    | Some d -> mismatch st "read %s diverged: %s" path d)

let exec_write st cs op =
  match pick_file st op with
  | None -> ()
  | Some (path, oid) ->
    let orng = Rng.create op.o_seed in
    let cur = view_content st cs oid in
    let len = Bytes.length cur in
    let dlen = 1 + Rng.int orng st.cfg.write_bytes in
    let off =
      if len + dlen > st.cfg.max_file_bytes then Rng.int orng (max 1 (len - dlen + 1))
      else Rng.int orng (len + 1)
    in
    trace st "s%d write %s off=%d len=%d" cs.id path off dlen;
    let data = Rng.bytes orng dlen in
    let after = splice cur ~off data in
    let fd = Client.c_open cs.c path Fs.Rdwr in
    ignore (Client.c_lseek cs.c fd (Int64.of_int off) Fs.Seek_set : int64);
    ignore (Client.c_write cs.c fd data dlen : int);
    (* The write RPC is the oracle's commit point: outside a transaction
       it auto-committed durably right there, and inside one the overlay
       dies with the transaction if anything later aborts.  Updating
       after the close would let a deadline-shed close strand a committed
       write outside the oracle. *)
    if cs.in_txn then cs.ov_files <- OM.add oid after cs.ov_files
    else st.files <- OM.add oid after st.files;
    Client.c_close cs.c fd

let exec_create st cs _op =
  let n = st.next_name in
  st.next_name <- n + 1;
  let path = Printf.sprintf "/t%d/f%d" cs.tenant n in
  let oid = st.next_oid in
  st.next_oid <- Int64.add oid 1L;
  trace st "s%d creat %s" cs.id path;
  let fd = Client.c_creat cs.c path in
  (* As with writes, the create RPC — not the close — is the oracle's
     commit point. *)
  if cs.in_txn then begin
    cs.ov_names <- (path, oid) :: cs.ov_names;
    cs.ov_files <- OM.add oid Bytes.empty cs.ov_files
  end
  else begin
    popn_add st.pop path oid;
    zipf_add st.zipf;
    st.files <- OM.add oid Bytes.empty st.files
  end;
  Client.c_close cs.c fd

let exec_time_travel st cs op =
  match st.history with
  | [] -> exec_read st cs op (* nothing to travel to yet *)
  | history -> (
    let orng = Rng.create op.o_seed in
    let ts, snap = List.nth history (Rng.int orng (List.length history)) in
    match snap with
    | [] -> exec_read st cs op
    | snap -> (
      let path, expect = List.nth snap (Rng.int orng (List.length snap)) in
      trace st "s%d tt @%Ld %s" cs.id ts path;
      st.time_travel_checks <- st.time_travel_checks + 1;
      match Client.read_whole_file cs.c ~timestamp:ts path with
      | real -> (
        match bytes_diff expect real with
        | None -> ()
        | Some d -> mismatch st "time travel @%Ld: %s differs: %s" ts path d)
      | exception (Errors.Fs_error _ as e) when is_shed_exn e -> raise e
      | exception Errors.Fs_error (code, msg) ->
        mismatch st "time travel @%Ld: %s unreadable (%s: %s)" ts path
          (Errors.code_to_string code) msg))

let exec_begin st cs =
  trace st "s%d begin" cs.id;
  if not cs.in_txn then begin
    Client.c_begin cs.c;
    cs.in_txn <- true
  end

let exec_commit st cs =
  trace st "s%d commit" cs.id;
  if cs.in_txn then begin
    Client.c_commit cs.c;
    st.commits <- st.commits + 1;
    commit_overlay st cs
  end

let exec_op st cs op =
  match op.o_kind with
  | Read -> exec_read st cs op
  | Write -> exec_write st cs op
  | Create -> exec_create st cs op
  | Time_travel -> exec_time_travel st cs op
  | Begin -> exec_begin st cs
  | Commit -> exec_commit st cs

let run_op st op =
  let cs = st.clients.(op.o_client) in
  match exec_op st cs op with
  | () -> `Applied
  | exception Errors.Fs_error (Errors.ETIMEDOUT, msg) when is_deadline_msg msg ->
    trace st "s%d .. deadline shed" cs.id;
    st.shed_deadline <- st.shed_deadline + 1;
    drop_txn st cs;
    `Shed
  | exception Errors.Fs_error (Errors.EBUSY, _) ->
    trace st "s%d .. overload shed" cs.id;
    st.shed_overload <- st.shed_overload + 1;
    drop_txn st cs;
    `Shed
  | exception
      Errors.Fs_error ((Errors.EAGAIN | Errors.EDEADLK | Errors.ETIMEDOUT), _) ->
    trace st "s%d .. lock skip" cs.id;
    lock_skip st cs;
    `Skipped
  | exception Errors.Fs_error (code, msg) ->
    mismatch st "unexpected fs error %s: %s" (Errors.code_to_string code) msg;
    lock_skip st cs;
    `Skipped

(* ---------- snapshots, verification ---------- *)

let take_snapshot st =
  let ts = Relstore.Db.now st.db in
  let snap = ref [] in
  for i = st.pop.count - 1 downto 0 do
    let path, oid = st.pop.entries.(i) in
    snap :=
      (path, Bytes.copy (Option.value ~default:Bytes.empty (OM.find_opt oid st.files)))
      :: !snap
  done;
  st.history <- (ts, !snap) :: st.history;
  (let rec cap n = function
     | [] -> []
     | _ when n = 0 -> []
     | x :: tl -> x :: cap (n - 1) tl
   in
   st.history <- cap 4 st.history);
  (* Move past the snapshot instant: As_of visibility uses <=, so no
     later commit may share its timestamp. *)
  Simclock.Clock.advance st.clock ~account:"load.mark" 1e-6

let join dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let verify_full_state st ~phase =
  st.full_verifies <- st.full_verifies + 1;
  let s = Fs.new_session st.fs in
  let real = Hashtbl.create 256 in
  let rec go dir =
    List.iter
      (fun name ->
        let path = join dir name in
        let att = Fs.stat s path in
        if att.Invfs.Fileatt.ftype = "directory" then go path
        else Hashtbl.replace real path (Fs.read_whole_file s path))
      (Fs.readdir s dir)
  in
  go "/";
  for i = 0 to st.pop.count - 1 do
    let path, oid = st.pop.entries.(i) in
    let expect = Option.value ~default:Bytes.empty (OM.find_opt oid st.files) in
    match Hashtbl.find_opt real path with
    | None -> mismatch st "%s: %s missing from real fs" phase path
    | Some r -> (
      Hashtbl.remove real path;
      match bytes_diff expect r with
      | None -> ()
      | Some d -> mismatch st "%s: %s content differs: %s" phase path d)
  done;
  Hashtbl.iter
    (fun path _ -> mismatch st "%s: real fs has unexpected file %s" phase path)
    real

(* ---------- the engine ---------- *)

(* Execute one schedule against the system, open-loop: if the clock has
   not yet reached an op's arrival the server is idle and time skips
   forward; if it has, the op has been queueing and its latency says so. *)
let run_schedule st ~t_start ~deadline ~headroom ~lat ~adm_lat ~tenant_lat ~max_wq
    sched =
  let applied = ref 0 and slo_ok = ref 0 in
  List.iter
    (fun op ->
      let arrival = t_start +. op.o_arrival in
      let now = Simclock.Clock.now st.clock in
      if now < arrival then
        Simclock.Clock.advance st.clock ~account:"load.idle" (arrival -. now);
      let now = Simclock.Clock.now st.clock in
      let cs = st.clients.(op.o_client) in
      (* The deadline is the op's, measured from its arrival: by the time
         a backlogged engine gets to it, part of the budget is already
         spent queueing — exactly what the caller experiences.  An op
         whose remaining budget is under [headroom] (the expected service
         time) is given up before its first RPC: under sustained overload
         the backlog pins at exactly the deadline boundary, and without
         this check nearly every started op expires halfway through,
         burning server time on work nobody will see. *)
      let res =
        match deadline with
        | Some d when now -. arrival >= d -. headroom ->
          trace st "s%d .. deadline give-up (%.0fms queued)" cs.id
            (1e3 *. (now -. arrival));
          st.shed_deadline <- st.shed_deadline + 1;
          drop_txn st cs;
          `Shed
        | _ ->
          (match deadline with
          | None -> ()
          | Some d -> Client.set_deadline cs.c (Some (arrival +. d)));
          let r = run_op st op in
          Client.set_deadline cs.c None;
          r
      in
      let done_t = Simclock.Clock.now st.clock in
      let d = done_t -. arrival in
      Metrics.observe lat d;
      Metrics.observe tenant_lat.(cs.tenant) d;
      (match res with
      | `Applied ->
        incr applied;
        Metrics.observe adm_lat d;
        if d <= st.cfg.slo_p99_s then incr slo_ok
      | `Skipped -> Metrics.observe adm_lat d
      | `Shed -> ());
      match Metrics.read "lock.wait_queue" with
      | Some wq when wq > !max_wq -> max_wq := wq
      | _ -> ())
    sched;
  (* Settle: any transaction the schedule left open aborts untimed, so
     the next level starts from committed state only. *)
  Array.iter
    (fun cs ->
      if cs.in_txn then begin
        (try Client.c_abort cs.c with _ -> ());
        st.aborts <- st.aborts + 1;
        clear_overlay cs
      end)
    st.clients;
  (!applied, !slo_ok)

let run ?(config = default_config) ~seed () =
  if config.clients < 1 then invalid_arg "Loadtest.run: clients must be >= 1";
  if config.tenants < 1 || config.tenants > config.clients then
    invalid_arg "Loadtest.run: tenants must be in [1, clients]";
  let rng = Rng.create seed in
  let clock = Simclock.Clock.create () in
  let switch = Pagestore.Switch.create ~clock in
  let (_ : Device.t) =
    Pagestore.Switch.add_device switch ~name:"disk0" ~kind:Device.Magnetic_disk ()
  in
  let db = Relstore.Db.create ~switch ~clock () in
  let fs = Fs.make db () in
  (* lease_s = 0: no lease reaping.  Sessions here never die, and a
     backlogged level must not have idle-looking clients reaped out from
     under the measurement. *)
  let server =
    Server.create ~fs ~lease_s:0. ~run_cap:config.run_cap
      ~park_cap:config.park_cap ~lock_wait_s:config.lock_wait_s ()
  in
  let net = Netsim.create ~clock Netsim.tcp_1993 in
  let links = Array.init config.clients (fun _ -> Link.create net) in
  let mk_client id =
    {
      id;
      tenant = id * config.tenants / config.clients;
      c = Client.connect ~server ~link:links.(id) ~rng:(Rng.split rng) ();
      in_txn = false;
      ov_names = [];
      ov_files = OM.empty;
    }
  in
  let st =
    {
      cfg = config;
      db;
      fs;
      clock;
      clients = Array.init config.clients mk_client;
      zipf = zipf_create config.zipf_theta;
      pop = { entries = Array.make 64 ("", 0L); count = 0 };
      files = OM.empty;
      history = [];
      next_name = 0;
      next_oid = 1L;
      commits = 0;
      aborts = 0;
      lock_skips = 0;
      shed_deadline = 0;
      shed_overload = 0;
      time_travel_checks = 0;
      full_verifies = 0;
      mismatches = [];
    }
  in
  (* Tenant directories, then the seed population (written through the
     wire so client and server agree on every byte). *)
  for t = 0 to config.tenants - 1 do
    Client.c_mkdir st.clients.(0).c (Printf.sprintf "/t%d" t)
  done;
  for i = 0 to config.initial_files - 1 do
    let cs = st.clients.(i mod config.clients) in
    let n = st.next_name in
    st.next_name <- n + 1;
    let path = Printf.sprintf "/t%d/f%d" cs.tenant n in
    let oid = st.next_oid in
    st.next_oid <- Int64.add oid 1L;
    let data = Rng.bytes rng config.file_bytes in
    Client.write_file cs.c path data;
    popn_add st.pop path oid;
    zipf_add st.zipf;
    st.files <- OM.add oid data st.files
  done;
  let lat = Metrics.histogram "load.latency_us" in
  let adm_lat = Metrics.histogram "load.admitted_latency_us" in
  let tenant_lat =
    Array.init config.tenants (fun t ->
        Metrics.histogram (Printf.sprintf "load.tenant%d.latency_us" t))
  in
  let reset_phase () =
    Metrics.hist_reset lat;
    Metrics.hist_reset adm_lat;
    Array.iter Metrics.hist_reset tenant_lat;
    Array.iter Link.reset_peak_depth links
  in
  (* Calibration: a closed-loop prefix (arrivals effectively at t=0, so
     every op starts the moment the previous finishes) measures the
     service capacity the sweep's levels are multiples of. *)
  let cal_seed = Rng.next rng in
  reset_phase ();
  let cal_sched =
    schedule ~config ~seed:cal_seed ~rate:1e12 ~ops:config.calibration_ops
  in
  let cal_t0 = Simclock.Clock.now clock in
  let max_wq = ref 0 in
  (* Calibration runs deadline-free: it measures what the service path
     can do, not what admission control would let through. *)
  let (_ : int * int) =
    run_schedule st ~t_start:cal_t0 ~deadline:None ~headroom:0. ~lat ~adm_lat
      ~tenant_lat ~max_wq cal_sched
  in
  let cal_dt = Simclock.Clock.now clock -. cal_t0 in
  let capacity =
    if cal_dt <= 0. then 1.
    else float_of_int config.calibration_ops /. cal_dt
  in
  trace st "calibration: %d ops in %.3fs -> capacity %.1f ops/s"
    config.calibration_ops cal_dt capacity;
  (* The sweep. *)
  let ops_total = ref config.calibration_ops and applied_total = ref 0 in
  let levels =
    List.map
      (fun factor ->
        let rate = factor *. capacity in
        let level_seed = Rng.next rng in
        take_snapshot st;
        reset_phase ();
        let sched = schedule ~config ~seed:level_seed ~rate ~ops:config.ops_per_level in
        let t_start = Simclock.Clock.now clock in
        let max_wq = ref 0 in
        let skips0 = st.lock_skips in
        let sd0 = st.shed_deadline and so0 = st.shed_overload in
        let applied, slo_ok =
          run_schedule st ~t_start ~deadline:config.deadline_s
            ~headroom:(1.5 /. capacity) ~lat ~adm_lat ~tenant_lat ~max_wq sched
        in
        let t_end = Simclock.Clock.now clock in
        let last_arrival =
          List.fold_left (fun acc o -> max acc o.o_arrival) 0. sched
        in
        let arrival_span = max 1e-9 last_arrival in
        let duration = max arrival_span (t_end -. t_start) in
        let n = List.length sched in
        ops_total := !ops_total + n;
        applied_total := !applied_total + applied;
        if config.verify_each_level then verify_full_state st ~phase:"post-level";
        {
          l_factor = factor;
          l_offered_ops_s = rate;
          l_offered_realized_ops_s = float_of_int n /. arrival_span;
          l_achieved_ops_s = float_of_int n /. duration;
          l_ops = n;
          l_applied = applied;
          l_lock_skips = st.lock_skips - skips0;
          l_p50_s = Metrics.percentile lat 0.50;
          l_p95_s = Metrics.percentile lat 0.95;
          l_p99_s = Metrics.percentile lat 0.99;
          l_mean_s =
            (if Metrics.hist_count lat = 0 then 0.
             else Metrics.hist_sum lat /. float_of_int (Metrics.hist_count lat));
          l_max_wait_queue = !max_wq;
          l_peak_link_depth =
            Array.fold_left (fun acc l -> max acc (Link.peak_depth l)) 0 links;
          l_tenant_p99_s = Array.map (fun h -> Metrics.percentile h 0.99) tenant_lat;
          l_shed_deadline = st.shed_deadline - sd0;
          l_shed_overload = st.shed_overload - so0;
          l_admitted = n - (st.shed_deadline - sd0) - (st.shed_overload - so0);
          l_admitted_p99_s = Metrics.percentile adm_lat 0.99;
          l_slo_goodput_ops_s = float_of_int slo_ok /. duration;
        })
      config.load_factors
  in
  verify_full_state st ~phase:"final";
  (* Knee: the first level that can no longer keep up with what is
     offered (achieved < 90% of realized offered) or that blows the p99
     SLO; if neither fires, the curve never bent in the swept range. *)
  let knee_offered, knee_reason =
    let rec find = function
      | [] -> (
        match List.rev levels with
        | last :: _ -> (last.l_offered_realized_ops_s, "no knee within swept range")
        | [] -> (0., "no levels swept"))
      | l :: rest ->
        if l.l_achieved_ops_s < 0.9 *. l.l_offered_realized_ops_s then
          (l.l_offered_realized_ops_s, Printf.sprintf "throughput saturated at x%.2f" l.l_factor)
        else if l.l_p99_s > config.slo_p99_s then
          (l.l_offered_realized_ops_s, Printf.sprintf "p99 SLO exceeded at x%.2f" l.l_factor)
        else find rest
    in
    find levels
  in
  {
    seed;
    capacity_ops_s = capacity;
    levels;
    knee_offered_ops_s = knee_offered;
    knee_reason;
    slo_p99_s = config.slo_p99_s;
    ops_total = !ops_total;
    applied_total = !applied_total;
    lock_skips = st.lock_skips;
    commits = st.commits;
    aborts = st.aborts;
    time_travel_checks = st.time_travel_checks;
    full_verifies = st.full_verifies;
    mismatches = List.rev st.mismatches;
    shed_deadline = st.shed_deadline;
    shed_overload = st.shed_overload;
  }
