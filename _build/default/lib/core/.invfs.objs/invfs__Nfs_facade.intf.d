lib/core/nfs_facade.mli: Fileatt Fs
