(* Vacuum-under-traffic sweep, run via `dune build @vacuum`.

   Each seed replays a randomized workload with one budgeted increment
   of the concurrent archive vacuum interleaved at every op boundary,
   O(1) snapshots and copy-on-write clones in the op mix, and crashes
   injected mid-step; the run must stay oracle-equivalent throughout
   (see Benchlib.Vacuumtest).  Always covers the fixed seed set below
   (30+ seeds); VACUUM_SEEDS=5,6,7 appends extra comma-separated seeds,
   VACUUM_OPS=N lengthens each run, and `--quick` (used by the @sweeps
   meta-alias and the default `dune runtest`) trims to a fast subset
   plus a same-seed determinism check. *)

let fixed_seeds =
  [
    1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L; 9L; 10L;
    11L; 12L; 13L; 14L; 15L; 16L; 17L; 18L; 19L; 20L;
    21L; 22L; 23L; 24L; 25L; 26L; 27L; 28L; 29L; 30L;
    42L; 1993L;
  ]

let quick_seeds = [ 1L; 7L; 42L ]

let env_seeds () =
  match Sys.getenv_opt "VACUUM_SEEDS" with
  | None | Some "" -> []
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun tok ->
           match Int64.of_string_opt (String.trim tok) with
           | Some n -> Some n
           | None ->
             Printf.eprintf "vacuum_sweep: ignoring bad seed %S\n" tok;
             None)

let ops () =
  match Sys.getenv_opt "VACUUM_OPS" with
  | None | Some "" -> Benchlib.Vacuumtest.default_config.Benchlib.Vacuumtest.ops
  | Some s -> int_of_string s

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let config = { Benchlib.Vacuumtest.default_config with ops = ops () } in
  let seeds = (if quick then quick_seeds else fixed_seeds) @ env_seeds () in
  let failed = ref 0 in
  let archived_total = ref 0 in
  List.iter
    (fun seed ->
      let o = Benchlib.Vacuumtest.run ~config ~seed () in
      Printf.printf "%s\n%!" (Benchlib.Vacuumtest.outcome_to_string o);
      archived_total := !archived_total + o.Benchlib.Vacuumtest.vacuum_archived;
      List.iter
        (fun m ->
          incr failed;
          Printf.printf "  MISMATCH: %s\n%!" m)
        o.Benchlib.Vacuumtest.mismatches)
    seeds;
  (* The sweep must actually exercise the archive path: across the seed
     set, the incremental vacuum must have migrated versions to the WORM
     tier, or the oracle equivalence proves nothing about it. *)
  if !archived_total = 0 then begin
    Printf.eprintf "vacuum_sweep: no versions were ever archived — the sweep is vacuous\n";
    incr failed
  end;
  if quick then begin
    (* Same-seed determinism: the whole run — workload, vacuum
       interleave, fault schedule, counters — is a function of the seed. *)
    let seed = List.hd quick_seeds in
    let a = Benchlib.Vacuumtest.run ~config ~seed () in
    let b = Benchlib.Vacuumtest.run ~config ~seed () in
    let sa = Benchlib.Vacuumtest.outcome_to_string a in
    let sb = Benchlib.Vacuumtest.outcome_to_string b in
    if sa <> sb then begin
      Printf.printf "  MISMATCH: same seed diverged:\n    %s\n    %s\n%!" sa sb;
      incr failed
    end
    else Printf.printf "determinism: seed %Ld reproduces byte-identically\n%!" seed
  end;
  if !failed > 0 then begin
    Printf.eprintf "vacuum_sweep: %d failures\n" !failed;
    exit 1
  end
