lib/core/stored_fn.ml: Bytes Errors Fs Fun Hashtbl List Option Postquel Printf String
