(** The Inversion server: a dispatch loop exposing the {!Invfs.Fs} API
    over {!Wire} frames on {!Netsim.Link} connections.

    One server owns one file system and any number of client connections
    ({!attach}).  {!pump} drains every connection's inbound queue,
    reassembles fragmented requests, and dispatches them; corrupt frames
    (CRC failure) are silently dropped, exactly as a damaged packet would
    be.

    {2 Exactly-once-observed semantics}

    Request ids are idempotency keys.  Each session records its recent
    replies in a {e dedup window}; a request id that already executed is
    answered by replaying the recorded reply, never by executing twice —
    so a retried-then-duplicated committed [p_write] is applied exactly
    once.  Duplicates older than the window are dropped (their client
    has provably moved on).

    {2 Sessions, leases}

    [Hello] mints a session (its request id is a client nonce, deduped
    the same way).  A session idle past [lease_s] is reaped and its open
    transaction aborted, so a dead client's locks cannot block the rest
    of the system forever.  Requests on an unknown session — after a
    server crash, or a lease reaping — get {!Wire.Unknown_session},
    which tells the client to reconnect.

    {2 Crashes}

    A poisoned frame ({!Netsim.Link.fault.Server_crash}) or an injected
    device crash during execution kills the machine mid-request: all
    volatile state (sessions, dedup windows, fds, connection queues,
    partial reassemblies) is discarded and the crash handler runs —
    {!Invfs.Fs.crash_and_recover} by default; harnesses install one that
    clears their fault schedule and verifies the recovered state.  The
    commit path forces data pages before the status log, so a request
    that never replied either committed durably or left no trace: no
    observable partial progress. *)

type t

val create :
  fs:Invfs.Fs.t ->
  ?lease_s:float ->
  ?dedup_window:int ->
  ?lock_attempts:int ->
  ?on_crash:(t -> unit) ->
  unit ->
  t
(** [lease_s] (default 120 simulated seconds; 0 disables) bounds how long
    a silent client's session survives.  [dedup_window] (default 16) is
    replies remembered per session.  [lock_attempts] (default 3) bounds
    the {!Relstore.Lock_mgr.retry_backoff} wait on read-only operations —
    each wait expires leases, which is what can actually release a dead
    client's locks. *)

val attach : t -> Netsim.Link.t -> unit
(** Accept a connection (idempotent).  Clients create a link and attach
    it before their [Hello]. *)

val fs : t -> Invfs.Fs.t
val set_on_crash : t -> (t -> unit) -> unit

val pump : t -> unit
(** Drain and dispatch every attached connection.  Runs lease expiry
    first.  A mid-pump crash stops the dispatch (the machine is gone);
    by the time [pump] returns the crash handler has recovered it. *)

val crash_now : t -> unit
(** Crash the server machine immediately (the boundary-crash entry point
    for harnesses and the [Crash_server] admin op). *)

val crashes : t -> int
val replays : t -> int
(** Requests answered from a dedup window instead of re-executing. *)

val leases_expired : t -> int

val fenced : t -> int
(** Sessions superseded by a fresh handshake on the same link: a
    reconnecting client's abandoned session is fenced off (its open
    transaction aborted) rather than left holding locks until the lease
    expires. *)

val requests : t -> int
val sessions_live : t -> int
