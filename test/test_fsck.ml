(* The structural audit: clean baselines, detection of deliberately
   corrupted heap pages and B-tree indexes, and repair via recovery. *)

module P = Pagestore.Page
module D = Pagestore.Device
module Db = Relstore.Db
module Fs = Invfs.Fs
module Fsck = Invfs.Fsck
module Rec = Invfs.Recovery

let bytes_of = Bytes.of_string
let str = Bytes.to_string

let make_fs () =
  let clock = Simclock.Clock.create () in
  let switch = Pagestore.Switch.create ~clock in
  ignore
    (Pagestore.Switch.add_device switch ~name:"disk0" ~kind:D.Magnetic_disk ()
      : D.t);
  let db = Relstore.Db.create ~switch ~clock () in
  Fs.make db ()

let populated () =
  let fs = make_fs () in
  let s = Fs.new_session fs in
  Fs.mkdir s "/docs";
  Fs.write_file s "/docs/report" (bytes_of "quarterly numbers");
  Fs.write_file s "/notes" (Bytes.make (Invfs.Chunk.capacity * 2) 'n');
  (fs, s)

let file_heap fs path s =
  let att = Fs.stat s path in
  let inv = Option.get (Fs.file_handle fs ~oid:att.Invfs.Fileatt.file) in
  (att, Invfs.Inv_file.heap inv)

let test_clean_baseline () =
  let fs, _ = populated () in
  let r = Fsck.audit fs in
  Alcotest.(check bool) ("clean: " ^ Fsck.report_to_string r) true (Fsck.is_clean r);
  Alcotest.(check bool) "files were checked" true (r.Fsck.files_checked >= 3)

let test_clean_after_plain_crash () =
  let fs, s = populated () in
  Fs.p_begin s;
  Fs.write_file s "/doomed" (bytes_of "never committed");
  Fs.crash fs;
  let r = Fsck.audit fs in
  Alcotest.(check bool)
    ("post-crash audit clean: " ^ Fsck.report_to_string r)
    true (Fsck.is_clean r)

let test_corrupted_heap_page_detected () =
  let fs, s = populated () in
  let att, heap = file_heap fs "/docs/report" s in
  let dev = Relstore.Heap.device heap in
  let segid = Relstore.Heap.segid heap in
  (* flip bytes in the durable image of the first non-empty heap block *)
  let corrupted = ref false in
  for blkno = 0 to Relstore.Heap.nblocks heap - 1 do
    if not !corrupted then begin
      let page = D.peek_block dev ~segid ~blkno in
      if P.to_bytes page <> Bytes.make P.size '\000' then begin
        P.set_u8 page 512 (P.get_u8 page 512 lxor 0xFF);
        D.poke_block dev ~segid ~blkno page;
        corrupted := true
      end
    end
  done;
  Alcotest.(check bool) "found a block to corrupt" true !corrupted;
  (* drop the caches so the audit reads the damaged durable image *)
  Fs.crash fs;
  let r = Fsck.audit fs in
  Alcotest.(check bool) "audit flags the damage" false (Fsck.is_clean r);
  let relname = Invfs.Inv_file.relname att.Invfs.Fileatt.file in
  Alcotest.(check bool) "problem names the relation" true
    (List.exists (fun p -> String.equal p.Fsck.relation relname) r.Fsck.problems)

let test_corrupted_index_detected_and_rebuilt () =
  let fs, s = populated () in
  let att, heap = file_heap fs "/notes" s in
  let oid = att.Invfs.Fileatt.file in
  let dev = Relstore.Heap.device heap in
  (* zero the chunk index's meta page in the durable image *)
  D.poke_block dev ~segid:att.Invfs.Fileatt.index_segid ~blkno:0 (P.create ());
  (* a machine crash now: caches drop, reads hit the zeroed meta page *)
  Fs.crash fs;
  let inv = Option.get (Fs.file_handle fs ~oid) in
  (match Invfs.Inv_file.index_check inv with
  | Ok () -> Alcotest.fail "index_check missed the zeroed meta page"
  | Error _ -> ());
  let audit = Fsck.audit fs in
  Alcotest.(check bool) "audit flags the index" false (Fsck.is_clean audit);
  (* whole-system recovery detects the damage and rebuilds from the heap *)
  let report = Rec.crash_and_recover fs in
  Alcotest.(check bool) "index rebuilt for the file" true
    (List.mem oid report.Rec.file_indexes_rebuilt);
  Alcotest.(check bool)
    ("recovery ends clean: " ^ Rec.report_to_string report)
    true (Rec.is_clean report);
  let s = Fs.new_session fs in
  Alcotest.(check string) "contents readable through rebuilt index"
    (String.make (Invfs.Chunk.capacity * 2) 'n')
    (str (Fs.read_whole_file s "/notes"))

let test_catalog_index_rebuild () =
  let fs, s = populated () in
  Fs.write_file s "/more" (bytes_of "more data");
  (* damage the naming catalog's B-trees in memory the way a crash does,
     then let recovery prove it can rebuild them from the heap *)
  Invfs.Naming.crash_reset (Fs.naming_catalog fs);
  (match Invfs.Naming.index_check (Fs.naming_catalog fs) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "naming index dirty before damage: %s" msg);
  let report = Rec.crash_and_recover fs in
  Alcotest.(check bool)
    ("recovery clean: " ^ Rec.report_to_string report)
    true (Rec.is_clean report);
  let s = Fs.new_session fs in
  Alcotest.(check string) "namespace intact" "more data"
    (str (Fs.read_whole_file s "/more"))

(* ---- the cross-shard placement walk (pure: inputs built by hand) ----

   Two shards, four buckets: bucket = oid mod 4, owner = 1 + (bucket mod
   2).  oids 0,2 -> shard 1; oids 1,3 -> shard 2. *)

let audit ?(owner = [| 1; 2; 1; 2 |]) ?(handoff = []) ?(drops = []) ~named ~resident
    () =
  Fsck.cross_shard_audit ~nshards:2 ~owner ~handoff ~drops
    ~bucket_of:(fun oid -> Int64.to_int (Int64.rem oid 4L))
    ~named ~resident

let problems r = List.map (fun p -> p.Fsck.relation) r.Fsck.sh_problems

let test_shard_audit_clean () =
  let r =
    audit ~named:[ 0L; 1L; 2L; 7L ]
      ~resident:[ (1, Some [ 0L; 2L ]); (2, Some [ 1L; 7L ]) ]
      ()
  in
  Alcotest.(check bool) ("clean: " ^ Fsck.shard_report_to_string r) true
    (Fsck.is_shard_clean r);
  Alcotest.(check int) "files" 4 r.Fsck.sh_files_checked;
  Alcotest.(check int) "copies" 4 r.Fsck.sh_copies_checked;
  (* a never-written file (no copy anywhere) is legitimate *)
  let r = audit ~named:[ 0L ] ~resident:[ (1, Some []); (2, Some []) ] () in
  Alcotest.(check bool) "empty file clean" true (Fsck.is_shard_clean r)

let test_shard_audit_stray_and_missing () =
  (* oid 0 belongs on shard 1 but only shard 2 holds it: one stray copy
     on shard 2, one missing-from-authority on shard 1 *)
  let r = audit ~named:[ 0L ] ~resident:[ (1, Some []); (2, Some [ 0L ]) ] () in
  Alcotest.(check bool) "unclean" false (Fsck.is_shard_clean r);
  Alcotest.(check (list string)) "both sides named" [ "shard1"; "shard2" ]
    (List.sort compare (problems r));
  (* the same copy excused by an in-flight handoff whose source is 2:
     bucket 0 moving 2 -> 1, map already points at 1 *)
  let r =
    audit ~handoff:[ (0, 2, 1) ] ~named:[ 0L ]
      ~resident:[ (1, Some []); (2, Some [ 0L ]) ]
      ()
  in
  Alcotest.(check bool) ("handoff source is authority: " ^ Fsck.shard_report_to_string r)
    true (Fsck.is_shard_clean r);
  (* ...and by a queued drop once the migration committed *)
  let r =
    audit ~drops:[ (0, 2) ] ~named:[ 0L ]
      ~resident:[ (1, Some [ 0L ]); (2, Some [ 0L ]) ]
      ()
  in
  Alcotest.(check bool) "queued drop excuses the stale copy" true
    (Fsck.is_shard_clean r)

let test_shard_audit_degraded_not_unclean () =
  (* shard 2 unreachable: its files cannot be audited — degraded shape,
     reported but clean, exactly like a dead unmirrored device *)
  let r = audit ~named:[ 0L; 1L ] ~resident:[ (1, Some [ 0L ]); (2, None) ] () in
  Alcotest.(check bool) ("degraded is clean: " ^ Fsck.shard_report_to_string r) true
    (Fsck.is_shard_clean r);
  Alcotest.(check (list string)) "reported unreachable" [ "shard2" ]
    r.Fsck.sh_unreachable;
  Alcotest.(check int) "only reachable copies counted" 1 r.Fsck.sh_copies_checked

let test_shard_audit_malformed_map () =
  let r =
    audit
      ~owner:[| 1; 9; 1; 2 |] (* bucket 1 owned by a shard that does not exist *)
      ~handoff:[ (2, 1, 1) ] (* self-handoff *)
      ~named:[] ~resident:[ (1, Some []); (2, Some []) ] ()
  in
  Alcotest.(check bool) "unclean" false (Fsck.is_shard_clean r);
  Alcotest.(check bool) "all problems are the map's" true
    (List.for_all (( = ) "placement") (problems r))


(* ---- archive-tier (WORM) audit ---- *)

let populated_with_history () =
  (* overwrite a file enough times, then vacuum incrementally, so the
     audit has real archived versions to walk *)
  let fs, s = populated () in
  for i = 1 to 6 do
    Fs.write_file s "/docs/report" (bytes_of (Printf.sprintf "draft %d" i))
  done;
  Simclock.Clock.advance (Relstore.Db.clock (Fs.db fs)) 1.;
  let archived = ref 0 in
  for _ = 1 to 64 do
    match Fs.vacuum_step fs ~pages:4 ~mode:`Archive () with
    | Some (_, st) -> archived := !archived + st.Relstore.Vacuum.s_archived
    | None -> ()
  done;
  Alcotest.(check bool) "history actually migrated to the WORM tier" true (!archived > 0);
  (fs, s)

let arch_heap fs =
  let db = Fs.db fs in
  let is_arch n =
    String.length n > 5 && String.sub n (String.length n - 5) 5 = "_arch"
  in
  let nonempty n =
    let some = ref false in
    Relstore.Heap.scan_raw (Relstore.Db.find_relation db n) (fun _ -> some := true);
    !some
  in
  let name = List.find (fun n -> is_arch n && nonempty n) (Relstore.Db.relations db) in
  Relstore.Db.find_relation db name

let test_archive_audit_clean () =
  let fs, _ = populated_with_history () in
  let r = Fsck.audit fs in
  Alcotest.(check bool) ("clean: " ^ Fsck.report_to_string r) true (Fsck.is_clean r);
  Alcotest.(check bool) "archived versions were audited" true (r.Fsck.archived_checked > 0);
  (* the verdict string surfaces the archive walk *)
  let rs = Fsck.report_to_string r in
  let has_needle =
    let needle = "archived versions" in
    let nl = String.length needle and l = String.length rs in
    let rec go i = i + nl <= l && (String.sub rs i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) ("report mentions the archive tier: " ^ rs) true has_needle

let test_archive_audit_detects_live_version () =
  (* a record with no deleter on write-once storage means the vacuum (or
     a bug wearing its clothes) moved a version readers may still need *)
  let fs, _ = populated_with_history () in
  let arch = arch_heap fs in
  let donor =
    let r = ref None in
    Relstore.Heap.scan_raw arch (fun rec_ -> if !r = None then r := Some rec_);
    Option.get !r
  in
  ignore
    (Relstore.Heap.append_raw arch ~oid:donor.Relstore.Heap.oid
       ~xmin:donor.Relstore.Heap.xmin ~xmax:Relstore.Xid.invalid
       donor.Relstore.Heap.payload
      : Relstore.Tid.t);
  let r = Fsck.audit fs in
  Alcotest.(check bool) "audit flags the live archived version" false (Fsck.is_clean r);
  Alcotest.(check bool) "problem names the WORM tier" true
    (List.exists
       (fun p ->
         let d = p.Fsck.detail in
         String.length d >= 12 && String.sub d 0 12 = "live version")
       r.Fsck.problems)

let test_archive_audit_detects_uncommitted_deleter () =
  let fs, _ = populated_with_history () in
  let arch = arch_heap fs in
  let db = Fs.db fs in
  let donor =
    let r = ref None in
    Relstore.Heap.scan_raw arch (fun rec_ -> if !r = None then r := Some rec_);
    Option.get !r
  in
  (* stamp the copy with a deleter that is still in progress *)
  let open_txn = Db.begin_txn db in
  ignore
    (Relstore.Heap.append_raw arch ~oid:donor.Relstore.Heap.oid
       ~xmin:donor.Relstore.Heap.xmin
       ~xmax:(Relstore.Txn.xid open_txn)
       donor.Relstore.Heap.payload
      : Relstore.Tid.t);
  let r = Fsck.audit fs in
  Relstore.Txn.abort open_txn;
  Alcotest.(check bool) "audit flags the undecided deleter" false (Fsck.is_clean r)

let () =
  Alcotest.run "fsck"
    [
      ( "baselines",
        [
          Alcotest.test_case "clean on a healthy tree" `Quick test_clean_baseline;
          Alcotest.test_case "clean after a plain crash" `Quick
            test_clean_after_plain_crash;
        ] );
      ( "damage",
        [
          Alcotest.test_case "corrupted heap page detected" `Quick
            test_corrupted_heap_page_detected;
          Alcotest.test_case "corrupted index detected and rebuilt" `Quick
            test_corrupted_index_detected_and_rebuilt;
          Alcotest.test_case "catalog indexes recover" `Quick test_catalog_index_rebuild;
        ] );
      ( "archive tier",
        [
          Alcotest.test_case "clean WORM walk after vacuum" `Quick
            test_archive_audit_clean;
          Alcotest.test_case "live version on WORM flagged" `Quick
            test_archive_audit_detects_live_version;
          Alcotest.test_case "uncommitted deleter on WORM flagged" `Quick
            test_archive_audit_detects_uncommitted_deleter;
        ] );
      ( "cross-shard",
        [
          Alcotest.test_case "clean placement walk" `Quick test_shard_audit_clean;
          Alcotest.test_case "stray and missing copies flagged" `Quick
            test_shard_audit_stray_and_missing;
          Alcotest.test_case "unreachable shard degrades, not unclean" `Quick
            test_shard_audit_degraded_not_unclean;
          Alcotest.test_case "malformed map flagged" `Quick
            test_shard_audit_malformed_map;
        ] );
    ]
