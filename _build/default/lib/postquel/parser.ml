exception Parse_error of string

type state = { mutable tokens : Lexer.token list }

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok what =
  if peek st = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s, found %s" what
            (Lexer.token_to_string (peek st))))

let rec parse_or st =
  let lhs = parse_and st in
  if peek st = Lexer.KW_OR then begin
    advance st;
    Ast.Binop (Ast.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if peek st = Lexer.KW_AND then begin
    advance st;
    Ast.Binop (Ast.And, lhs, parse_and st)
  end
  else lhs

and parse_not st =
  if peek st = Lexer.KW_NOT then begin
    advance st;
    Ast.Not (parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.EQ -> Some Ast.Eq
    | Lexer.NE -> Some Ast.Ne
    | Lexer.LT -> Some Ast.Lt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GT -> Some Ast.Gt
    | Lexer.GE -> Some Ast.Ge
    | Lexer.KW_IN -> Some Ast.In
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_add st)

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Lexer.MINUS ->
      advance st;
      loop (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Lexer.SLASH ->
      advance st;
      loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
    advance st;
    Ast.Binop (Ast.Sub, Ast.Const (Value.Int 0L), parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i ->
    advance st;
    Ast.Const (Value.Int i)
  | Lexer.FLOAT f ->
    advance st;
    Ast.Const (Value.Float f)
  | Lexer.STRING s ->
    advance st;
    Ast.Const (Value.Str s)
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      let args = parse_args st in
      expect st Lexer.RPAREN ")";
      Ast.Call (name, args)
    end
    else Ast.Var name
  | Lexer.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st Lexer.RPAREN ")";
    e
  | tok ->
    raise (Parse_error (Printf.sprintf "unexpected %s" (Lexer.token_to_string tok)))

and parse_args st =
  if peek st = Lexer.RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_or st in
      if peek st = Lexer.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []
  end

let parse_expr src =
  let st = { tokens = Lexer.tokenize src } in
  let e = parse_or st in
  expect st Lexer.EOF "end of input";
  e

let parse_statement src =
  let st = { tokens = Lexer.tokenize src } in
  match peek st with
  | Lexer.KW_RETRIEVE ->
    advance st;
    expect st Lexer.LPAREN "(";
    let targets = parse_args st in
    if targets = [] then raise (Parse_error "retrieve needs at least one target");
    expect st Lexer.RPAREN ")";
    let where =
      if peek st = Lexer.KW_WHERE then begin
        advance st;
        Some (parse_or st)
      end
      else None
    in
    expect st Lexer.EOF "end of input";
    Ast.Retrieve { targets; where }
  | Lexer.KW_DEFINE ->
    advance st;
    expect st Lexer.KW_TYPE "type";
    (match peek st with
    | Lexer.IDENT name ->
      advance st;
      expect st Lexer.EOF "end of input";
      Ast.Define_type name
    | tok ->
      raise
        (Parse_error
           (Printf.sprintf "expected type name, found %s" (Lexer.token_to_string tok))))
  | tok ->
    raise
      (Parse_error
         (Printf.sprintf "expected a statement, found %s" (Lexer.token_to_string tok)))
