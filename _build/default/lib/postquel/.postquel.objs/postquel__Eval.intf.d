lib/postquel/eval.mli: Ast Registry Value
