test/test_nfs_facade.ml: Alcotest Buffer Bytes Gen Int64 Invfs List Printf QCheck QCheck_alcotest Relstore Simclock
