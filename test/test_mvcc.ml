(* Property-based MVCC visibility: random interleavings of
   begin/write/commit/abort across three concurrent transaction slots,
   checked against a brute-force oracle computed from the operation
   history alone (which transaction inserted each record, and what its
   status was at each instant).

   Each slot writes its own relation so three transactions can hold
   their exclusive locks simultaneously — the interleaving exercised
   here is of *visibility* state, which is exactly what the paper's
   status-file design claims needs no write-ahead log to get right.

   Shrinking is by prefix: an op sequence that fails keeps failing as
   its shortest failing prefix, which is the readable repro. *)

module Db = Relstore.Db
module Heap = Relstore.Heap
module Txn = Relstore.Txn
module Snapshot = Relstore.Snapshot

type op = Begin of int | Write of int | Commit of int | Abort of int

let op_of_int i =
  let slot = i / 4 in
  match i mod 4 with
  | 0 -> Begin slot
  | 1 -> Write slot
  | 2 -> Commit slot
  | _ -> Abort slot

let op_to_string = function
  | Begin s -> Printf.sprintf "begin@%d" s
  | Write s -> Printf.sprintf "write@%d" s
  | Commit s -> Printf.sprintf "commit@%d" s
  | Abort s -> Printf.sprintf "abort@%d" s

(* the oracle's view of one inserted record *)
type version = { v_oid : int64; v_xmin : int }

type status = Active | Done_commit of int64 | Done_abort

let run_scenario ops =
  let clock = Simclock.Clock.create () in
  let db = Db.create ~clock () in
  let rels = Array.init 3 (fun i -> Db.create_relation db ~name:(Printf.sprintf "r%d" i) ()) in
  let txns = Array.make 3 None in
  let statuses : (int, status) Hashtbl.t = Hashtbl.create 16 in
  let versions = ref [] in
  let next_oid = ref 1L in
  (* horizons: (timestamp, unit) captured after every op *)
  let horizons = ref [] in
  let step op =
    (match op with
    | Begin slot ->
      if txns.(slot) = None then begin
        let t = Db.begin_txn db in
        Hashtbl.replace statuses (Txn.xid t) Active;
        txns.(slot) <- Some t
      end
    | Write slot -> (
      match txns.(slot) with
      | None -> ()
      | Some t ->
        let oid = !next_oid in
        next_oid := Int64.add oid 1L;
        ignore (Heap.insert rels.(slot) t ~oid (Bytes.make 24 'v') : Relstore.Tid.t);
        versions := { v_oid = oid; v_xmin = Txn.xid t } :: !versions)
    | Commit slot -> (
      match txns.(slot) with
      | None -> ()
      | Some t ->
        let ts = Txn.commit t in
        Hashtbl.replace statuses (Txn.xid t) (Done_commit ts);
        txns.(slot) <- None)
    | Abort slot -> (
      match txns.(slot) with
      | None -> ()
      | Some t ->
        Txn.abort t;
        Hashtbl.replace statuses (Txn.xid t) Done_abort;
        txns.(slot) <- None));
    (* a strictly-later instant than anything the op just did *)
    Simclock.Clock.advance clock ~account:"test.step" 1.0;
    horizons := Db.now db :: !horizons
  in
  List.iter step ops;
  (db, rels, txns, statuses, List.rev !versions, List.rev !horizons)

let scan_oids rels snap =
  let acc = ref [] in
  Array.iter (fun rel -> Heap.scan rel snap (fun r -> acc := r.Heap.oid :: !acc)) rels;
  List.sort Int64.compare !acc

let expected_as_of statuses versions horizon =
  List.filter_map
    (fun v ->
      match Hashtbl.find_opt statuses v.v_xmin with
      | Some (Done_commit ts) when ts <= horizon -> Some v.v_oid
      | _ -> None)
    versions
  |> List.sort Int64.compare

let expected_current statuses versions ~self =
  List.filter_map
    (fun v ->
      match Hashtbl.find_opt statuses v.v_xmin with
      | Some (Done_commit _) -> Some v.v_oid
      | _ when v.v_xmin = self -> Some v.v_oid
      | _ -> None)
    versions
  |> List.sort Int64.compare

let show_oids l = String.concat "," (List.map Int64.to_string l)

let prop_visibility codes =
  let ops = List.map op_of_int codes in
  let db, rels, txns, statuses, versions, horizons = run_scenario ops in
  (* 1. time travel: every captured horizon sees exactly the records
        whose inserter had committed by then *)
  List.iter
    (fun horizon ->
      let got = scan_oids rels (Snapshot.As_of horizon) in
      let want = expected_as_of statuses versions horizon in
      if got <> want then
        QCheck.Test.fail_reportf
          "as-of %Ld mismatch\n  ops: %s\n  oracle: [%s]\n  scan:   [%s]" horizon
          (String.concat " " (List.map op_to_string ops))
          (show_oids want) (show_oids got))
    horizons;
  (* 2. each still-active transaction sees every committed record plus
        its own uncommitted writes — and nothing from aborted or other
        in-progress transactions *)
  Array.iter
    (fun slot_txn ->
      match slot_txn with
      | None -> ()
      | Some t ->
        let got = scan_oids rels (Txn.snapshot t) in
        let want = expected_current statuses versions ~self:(Txn.xid t) in
        if got <> want then
          QCheck.Test.fail_reportf
            "current(xid=%d) mismatch\n  ops: %s\n  oracle: [%s]\n  scan:   [%s]"
            (Txn.xid t)
            (String.concat " " (List.map op_to_string ops))
            (show_oids want) (show_oids got))
    txns;
  (* 3. a fresh observer that writes nothing sees exactly the committed set *)
  let observer = Db.begin_txn db in
  let got = scan_oids rels (Txn.snapshot observer) in
  let want = expected_current statuses versions ~self:(-1) in
  Txn.abort observer;
  if got <> want then
    QCheck.Test.fail_reportf
      "observer mismatch\n  ops: %s\n  oracle: [%s]\n  scan:   [%s]"
      (String.concat " " (List.map op_to_string ops))
      (show_oids want) (show_oids got);
  true

(* op sequences over 3 slots x 4 op kinds, shrunk by prefix only (a
   failing sequence stays a *sequence* — dropping middle ops would
   change every later op's meaning) *)
let arb_ops =
  let gen = QCheck.Gen.(list_size (int_bound 40) (int_bound 11)) in
  let shrink l yield =
    let n = List.length l in
    if n > 0 then begin
      let prefix k = List.filteri (fun i _ -> i < k) l in
      yield (prefix (n / 2));
      yield (prefix (n - 1))
    end
  in
  QCheck.make ~print:QCheck.Print.(list int) ~shrink gen

let prop_mvcc =
  QCheck.Test.make ~name:"random interleavings match the status-log oracle" ~count:150
    arb_ops prop_visibility

(* One directed scenario pinning down the sharpest cases: an aborted
   writer's records never appear, an in-progress writer's records are
   private, and a crash-free commit is visible from its timestamp on. *)
let test_directed () =
  let db = Db.create () in
  let rel = Db.create_relation db ~name:"d" () in
  (* committed write *)
  let t1 = Db.begin_txn db in
  ignore (Heap.insert rel t1 ~oid:1L (Bytes.make 8 'a') : Relstore.Tid.t);
  let ts1 = Txn.commit t1 in
  (* aborted write *)
  let t2 = Db.begin_txn db in
  ignore (Heap.insert rel t2 ~oid:2L (Bytes.make 8 'b') : Relstore.Tid.t);
  Txn.abort t2;
  (* in-progress write *)
  let t3 = Db.begin_txn db in
  ignore (Heap.insert rel t3 ~oid:3L (Bytes.make 8 'c') : Relstore.Tid.t);
  let collect snap =
    let acc = ref [] in
    Heap.scan rel snap (fun r -> acc := r.Heap.oid :: !acc);
    List.sort Int64.compare !acc
  in
  Alcotest.(check (list int64)) "observer sees only the commit" [ 1L ]
    (collect (Snapshot.Current (Txn.xid (Db.begin_txn db))));
  Alcotest.(check (list int64)) "writer sees its own uncommitted row" [ 1L; 3L ]
    (collect (Txn.snapshot t3));
  Alcotest.(check (list int64)) "as-of the commit instant" [ 1L ]
    (collect (Snapshot.As_of ts1));
  Alcotest.(check (list int64)) "as-of before the commit" []
    (collect (Snapshot.As_of (Int64.sub ts1 1L)));
  Txn.abort t3

let () =
  Alcotest.run "mvcc"
    [
      ( "visibility",
        [
          Alcotest.test_case "directed corner cases" `Quick test_directed;
          QCheck_alcotest.to_alcotest prop_mvcc;
        ] );
    ]
