lib/core/recovery.mli: Fs Fsck Relstore
