lib/relstore/txn.ml: Cpu_model List Lock_mgr Pagestore Printf Simclock Snapshot Status_log Xid
