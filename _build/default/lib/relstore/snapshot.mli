(** Visibility rules for the no-overwrite storage manager.

    Every record version carries the xid that inserted it ([xmin]) and the
    xid that deleted/replaced it ([xmax], 0 while live).  Nothing is ever
    overwritten in place, so "what can this reader see?" is a pure function
    of these stamps and the {!Status_log}:

    - [Current xid] — an ordinary transaction sees its own changes plus
      everything committed.  (Two-phase relation locks prevent concurrent
      writers from changing a relation mid-read, so degree-3 consistency
      needs no extra machinery.)
    - [As_of t] — time travel: exactly the versions whose inserter had
      committed by simulated time [t] and whose deleter had not.  "All
      transactions that had committed as of that time will be visible, so
      the file system state will be exactly the same as it was at that
      moment." *)

type t =
  | Current of Xid.t  (** the given transaction's ordinary view *)
  | As_of of int64  (** historical view at a simulated time, µs *)

val visible : Status_log.t -> t -> xmin:Xid.t -> xmax:Xid.t -> bool
(** Is a record version with these stamps visible under the snapshot? *)

val to_string : t -> string
