lib/postquel/ast.ml: List Printf String Value
