type t = { fs : Fs.t; session : Fs.session }
type descriptor = Fs.fd

let lo_dir = "/.largeobjects"

let manager fs =
  let session = Fs.new_session fs in
  if not (Fs.exists session lo_dir) then Fs.mkdir session ~owner:"postgres" lo_dir;
  { fs; session }

let session t = t.session

let lo_name oid = Printf.sprintf "%s/lo_%Ld" lo_dir oid

let lo_creat t ?(compressed = false) () =
  let fd =
    Fs.p_creat t.session ~owner:"postgres" ~compressed
      (Printf.sprintf "%s/pending" lo_dir)
  in
  let oid = Fs.fd_oid t.session fd in
  Fs.p_close t.session fd;
  (* name the object by its own oid, so the fs view is stable *)
  Fs.rename t.session (Printf.sprintf "%s/pending" lo_dir) (lo_name oid);
  oid

let lo_of_path t path = Fs.lookup_oid t.session path

let path_of t ?timestamp oid =
  match Fs.path_of_oid t.session ?timestamp oid with
  | Some p -> p
  | None -> Errors.fail Errors.ENOENT "no object with oid %Ld" oid

let lo_open t ?timestamp oid =
  let mode = match timestamp with Some _ -> Fs.Rdonly | None -> Fs.Rdwr in
  Fs.p_open t.session ?timestamp (path_of t ?timestamp oid) mode

let lo_close t fd = Fs.p_close t.session fd
let lo_read t fd buf len = Fs.p_read t.session fd buf len
let lo_write t fd buf len = Fs.p_write t.session fd buf len
let lo_seek t fd off whence = Fs.p_lseek t.session fd off whence
let lo_tell t fd = Fs.p_tell t.session fd
let lo_unlink t oid = Fs.unlink t.session (path_of t oid)

let lo_size t ?timestamp oid =
  (Fs.stat t.session ?timestamp (path_of t ?timestamp oid)).Fileatt.size

let lo_export t oid path =
  Fs.write_file t.session path (Fs.read_whole_file t.session (path_of t oid))

let lo_import t path = lo_of_path t path
