(* Seeded differential load sweep, run via `dune build @load`.

   Each seed drives a full Loadtest run — open-loop Poisson arrivals,
   Zipf popularity, multi-op transactions — and must be
   oracle-equivalent (zero mismatches) while satisfying the saturation
   invariants: achieved throughput never exceeds realized offered load,
   percentiles are ordered, and the detected knee lies within the swept
   range.  Covers 50 seeds by default; LOAD_SEEDS=5,6,7 appends extra
   comma-separated seeds, LOAD_CLIENTS=N and LOAD_OPS=N resize each
   run, and `--quick` (wired into the default `dune runtest`) trims to
   a fast subset that also asserts same-seed determinism.  `--trace
   SEED` replays one seed with the per-op log on stderr. *)

module Loadtest = Benchlib.Loadtest

let base_seeds = List.init 50 (fun i -> Int64.of_int (i + 1))
let quick_seeds = [ 1L; 2L; 3L ]

let env_seeds () =
  match Sys.getenv_opt "LOAD_SEEDS" with
  | None | Some "" -> []
  | Some s ->
    String.split_on_char ',' s
    |> List.filter_map (fun tok ->
           match Int64.of_string_opt (String.trim tok) with
           | Some n -> Some n
           | None ->
             Printf.eprintf "load_sweep: ignoring bad seed %S\n" tok;
             None)

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> int_of_string s

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "  FAIL: %s\n%!" msg)
    fmt

let check_invariants (o : Loadtest.outcome) =
  List.iter (fun m -> fail "mismatch: %s" m) o.mismatches;
  if o.capacity_ops_s <= 0. then fail "capacity %.3f not positive" o.capacity_ops_s;
  List.iter
    (fun (l : Loadtest.level) ->
      if l.l_achieved_ops_s < 0. then
        fail "x%.2f: achieved %.3f negative" l.l_factor l.l_achieved_ops_s;
      if l.l_achieved_ops_s > l.l_offered_realized_ops_s +. 1e-6 then
        fail "x%.2f: achieved %.3f exceeds offered %.3f" l.l_factor
          l.l_achieved_ops_s l.l_offered_realized_ops_s;
      if not (l.l_p50_s <= l.l_p95_s && l.l_p95_s <= l.l_p99_s) then
        fail "x%.2f: percentiles unordered p50=%g p95=%g p99=%g" l.l_factor
          l.l_p50_s l.l_p95_s l.l_p99_s;
      if l.l_applied > l.l_ops then
        fail "x%.2f: applied %d > ops %d" l.l_factor l.l_applied l.l_ops)
    o.levels;
  let offered = List.map (fun l -> l.Loadtest.l_offered_realized_ops_s) o.levels in
  let lo = List.fold_left min infinity offered in
  let hi = List.fold_left max 0. offered in
  if o.knee_offered_ops_s < lo -. 1e-6 || o.knee_offered_ops_s > hi +. 1e-6 then
    fail "knee %.3f outside swept range [%.3f, %.3f]" o.knee_offered_ops_s lo hi

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let trace_seed =
    let rec find i =
      if i >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--trace" && i + 1 < Array.length Sys.argv then
        Int64.of_string_opt Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  (* The sweep's job is breadth (many seeds), not depth: both modes use
     the small config and long mode buys coverage with 50 seeds.
     LOAD_CLIENTS/LOAD_OPS scale a run up when depth is wanted. *)
  let base = Loadtest.quick_config in
  let config =
    {
      base with
      Loadtest.clients = env_int "LOAD_CLIENTS" base.Loadtest.clients;
      ops_per_level = env_int "LOAD_OPS" base.Loadtest.ops_per_level;
      trace = trace_seed <> None;
    }
  in
  let seeds =
    match trace_seed with
    | Some s -> [ s ]
    | None -> (if quick then quick_seeds else base_seeds) @ env_seeds ()
  in
  List.iter
    (fun seed ->
      let o = Loadtest.run ~config ~seed () in
      Printf.printf "%s\n%!" (Loadtest.outcome_to_string o);
      check_invariants o)
    seeds;
  (* Determinism: the differential sweep is only trustworthy if a seed
     replays to the identical schedule and outcome. *)
  if trace_seed = None then begin
    let seed = List.hd seeds in
    let d1 =
      Loadtest.schedule_digest ~config ~seed ~rate:100. ~ops:config.ops_per_level
    in
    let d2 =
      Loadtest.schedule_digest ~config ~seed ~rate:100. ~ops:config.ops_per_level
    in
    if d1 <> d2 then fail "schedule digest not deterministic: %s vs %s" d1 d2;
    let o1 = Loadtest.run ~config ~seed () in
    let o2 = Loadtest.run ~config ~seed () in
    if Loadtest.outcome_to_string o1 <> Loadtest.outcome_to_string o2 then
      fail "outcome not deterministic for seed %Ld:\n%s\nvs\n%s" seed
        (Loadtest.outcome_to_string o1)
        (Loadtest.outcome_to_string o2)
  end;
  if !failures > 0 then begin
    Printf.eprintf "load_sweep: %d failures (repro: load_sweep.exe --trace SEED)\n"
      !failures;
    exit 1
  end
