lib/benchlib/sequoia.mli:
