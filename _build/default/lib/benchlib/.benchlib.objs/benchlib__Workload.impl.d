lib/benchlib/workload.ml: Bytes Char Int64 List Option Simclock Systems
