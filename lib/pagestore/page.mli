(** Fixed-size 8192-byte data pages.

    The page size is inherited from POSTGRES: it was chosen to make magnetic
    disk transfers fast, and Inversion sizes its file chunks so one chunk
    record fits exactly on one page (paper, "Decomposing Files into
    Tables").  All storage in this repository — heap tables, B-tree nodes,
    the FFS baseline's blocks — moves in units of [Page.size] bytes.

    Accessors use little-endian byte order and check bounds. *)

type t

val size : int
(** 8192. *)

val create : unit -> t
(** A zero-filled page. *)

val copy : t -> t

val of_bytes : bytes -> t
(** Wrap (copying) a buffer; it is padded or truncated to [size]. *)

val to_bytes : t -> bytes
(** A fresh copy of the page's contents. *)

val raw : t -> bytes
(** The underlying buffer, shared (no copy).  For I/O paths only. *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
(** 32-bit read, returned as a non-negative OCaml [int]. *)

val set_u32 : t -> int -> int -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit

val blit_in : t -> int -> bytes -> int -> int -> unit
(** [blit_in page off src srcoff len] copies bytes into the page. *)

val blit_out : t -> int -> bytes -> int -> int -> unit
(** [blit_out page off dst dstoff len] copies bytes out of the page. *)

val get_string : t -> int -> int -> string
val set_string : t -> int -> string -> unit

val clear : t -> unit
(** Zero the whole page. *)

val checksum : t -> int32
(** CRC-32 of the page contents.  Self-identifying blocks (paper, "Fast
    Recovery") store this to detect medium corruption. *)

val checksum_bytes : bytes -> int32
(** CRC-32 of a raw buffer (padded/truncated to [size] first).  The device
    layer uses this to record per-block checksums of the durable image. *)
