lib/relstore/cpu_model.mli: Simclock
