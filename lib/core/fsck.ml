type problem = { relation : string; detail : string }

type report = {
  relations_checked : int;
  files_checked : int;
  problems : problem list;
  degraded : string list;
  cache : Pagestore.Bufcache.stats;
}

let is_clean r = r.problems = []

let report_to_string r =
  let degraded_suffix =
    match r.degraded with
    | [] -> ""
    | l -> Printf.sprintf "; degraded (dead device, no mirror): %s" (String.concat "," l)
  in
  if is_clean r then
    Printf.sprintf "clean: %d relations, %d files%s" r.relations_checked r.files_checked
      degraded_suffix
  else
    String.concat "\n"
      (List.map (fun p -> Printf.sprintf "%s: %s" p.relation p.detail) r.problems)
    ^ degraded_suffix

(* Cache counters are reported separately from the consistency verdict:
   the verdict string is golden-checked by the cram tests and must not
   pick up a counter that changes with every cache-policy tweak. *)
let cache_to_string r = Pagestore.Bufcache.stats_to_string r.cache

let audit fs =
  let db = Fs.db fs in
  let snap = Relstore.Snapshot.As_of (Relstore.Db.now db) in
  let problems = ref [] in
  let push relation detail = problems := { relation; detail } :: !problems in
  (* 0. media-level availability: relations whose every copy is gone are
     reported as degraded, not audited — the consistency verdict below
     covers what is still answering. *)
  let degraded = Relstore.Db.degraded_relations db in
  let is_degraded name = List.mem name degraded in
  (* 1. media-level: every page self-identifies *)
  let rels = Relstore.Db.relations db in
  let check_pages name =
    if not (is_degraded name) then
      match Relstore.Heap.verify (Relstore.Db.find_relation db name) with
      | Ok () -> ()
      | Error msg -> push name msg
      | exception Pagestore.Device.Media_failure m ->
        push name (Printf.sprintf "media failure: %s (%s/%d/%d)" m.reason m.device m.segid m.blkno)
  in
  List.iter check_pages rels;
  (* 2. namespace structure *)
  let files_checked = ref 0 in
  Fs.iter_files fs snap (fun entry att ->
      incr files_checked;
      let oid = entry.Naming.file in
      if not (Int64.equal att.Fileatt.file oid) then
        push "fileatt" (Printf.sprintf "oid %Ld attribute record names %Ld" oid att.Fileatt.file);
      (* parent must exist and be a directory *)
      if not (Int64.equal oid (Fs.root_oid fs)) then begin
        let parent = entry.Naming.parentid in
        if Int64.equal parent Naming.root_parent && not (String.equal entry.Naming.name "/")
        then push "naming" (Printf.sprintf "%s claims the root pseudo-parent" entry.Naming.name)
      end;
      (* data relation exists and sizes are consistent *)
      if att.Fileatt.index_segid >= 0 then begin
        let relname = Inv_file.relname oid in
        if is_degraded relname then () (* unreachable data, reported as degraded *)
        else if not (Relstore.Db.relation_exists db relname) then
          push relname "data relation missing"
        else
          try
            match Fs.file_handle fs ~oid with
            | None -> push relname "cannot attach storage handle"
            | Some inv ->
              let max_seen = ref (-1L) and total = ref 0L in
              Inv_file.iter_chunks inv snap (fun chunkno data ->
                  if Int64.compare chunkno !max_seen > 0 then max_seen := chunkno;
                  total := Int64.add !total (Int64.of_int (Bytes.length data)));
              (* Files can be sparse (ftruncate growth stores no chunks), so
                 there is no ceiling on size vs stored chunks; but no stored
                 chunk may start at or beyond the file size. *)
              let cap = Int64.of_int Chunk.capacity in
              let min_size =
                if Int64.compare !max_seen 0L < 0 then 0L
                else Int64.add (Int64.mul !max_seen cap) 1L
              in
              if Int64.compare att.Fileatt.size min_size < 0 then
                push relname
                  (Printf.sprintf "size %Ld below chunk floor %Ld" att.Fileatt.size min_size)
          with Pagestore.Device.Media_failure m ->
            push relname
              (Printf.sprintf "media failure: %s (%s/%d/%d)" m.reason m.device m.segid m.blkno)
      end);
  (* 3. index consistency: the B-trees are update-in-place, the one layer
     a crash can actually damage, so audit structure and completeness
     against the (self-identifying, no-overwrite) heaps *)
  (match Naming.index_check (Fs.naming_catalog fs) with
  | Ok () -> ()
  | Error msg -> push "naming" ("index: " ^ msg));
  (match Fileatt.index_check (Fs.fileatt_catalog fs) with
  | Ok () -> ()
  | Error msg -> push "fileatt" ("index: " ^ msg));
  Fs.iter_file_handles fs (fun oid inv ->
      if not (is_degraded (Inv_file.relname oid)) then
        match Inv_file.index_check inv with
        | Ok () -> ()
        | Error msg -> push (Inv_file.relname oid) ("index: " ^ msg)
        | exception Pagestore.Device.Media_failure _ -> ());
  {
    relations_checked = List.length rels;
    files_checked = !files_checked;
    problems = List.rev !problems;
    degraded;
    cache = Pagestore.Bufcache.stats (Relstore.Db.cache db);
  }
