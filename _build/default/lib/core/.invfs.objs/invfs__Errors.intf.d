lib/core/errors.mli:
