test/test_simclock.ml: Alcotest Array Fun Gen Int64 List QCheck QCheck_alcotest Simclock
