lib/core/nfs_facade.ml: Bytes Errors Fileatt Fs Fun Int64 String
