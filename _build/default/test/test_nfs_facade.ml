(* NFS access to Inversion: stateless handles, per-op atomicity, and the
   name@timestamp time-travel namespace extension. *)

module Fs = Invfs.Fs
module N = Invfs.Nfs_facade
module E = Invfs.Errors

let fresh () =
  let clock = Simclock.Clock.create () in
  let db = Relstore.Db.create ~clock () in
  let fs = Fs.make db () in
  (clock, fs, N.serve fs)

let bytes_of = Bytes.of_string
let str = Bytes.to_string

let expect_error code f =
  match f () with
  | _ -> Alcotest.failf "expected %s" (E.code_to_string code)
  | exception E.Fs_error (c, _) ->
    Alcotest.(check string) "error code" (E.code_to_string code) (E.code_to_string c)

let test_create_write_read () =
  let _, _, n = fresh () in
  let root = N.root n in
  let fh = N.create n ~dir:root "hello.txt" in
  N.write n fh ~off:0L (bytes_of "over the wire");
  Alcotest.(check string) "read back" "over the wire" (str (N.read n fh ~off:0L ~len:64));
  Alcotest.(check string) "offset read" "wire" (str (N.read n fh ~off:9L ~len:64))

let test_lookup_and_readdir () =
  let _, _, n = fresh () in
  let root = N.root n in
  let d = N.mkdir n ~dir:root "sub" in
  let f = N.create n ~dir:d "f" in
  Alcotest.(check (list string)) "root listing" [ "sub" ] (N.readdir n root);
  Alcotest.(check (list string)) "sub listing" [ "f" ] (N.readdir n d);
  (match N.lookup n ~dir:root "sub" with
  | Some fh -> Alcotest.(check bool) "same dir" true (N.fh_equal fh d)
  | None -> Alcotest.fail "lookup sub");
  (match N.lookup n ~dir:d "f" with
  | Some fh -> Alcotest.(check bool) "same file" true (N.fh_equal fh f)
  | None -> Alcotest.fail "lookup f");
  Alcotest.(check bool) "missing" true (N.lookup n ~dir:root "nope" = None);
  expect_error E.ENOTDIR (fun () -> N.readdir n f)

let test_getattr () =
  let _, _, n = fresh () in
  let root = N.root n in
  let fh = N.create n ~dir:root "f" in
  N.write n fh ~off:0L (bytes_of "12345");
  (match N.getattr n fh with
  | Some att -> Alcotest.(check int64) "size" 5L att.Invfs.Fileatt.size
  | None -> Alcotest.fail "getattr");
  N.remove n ~dir:root "f";
  Alcotest.(check bool) "stale after remove" true (N.getattr n fh = None)

let test_handles_survive_crash () =
  let _, fs, n = fresh () in
  let root = N.root n in
  let fh = N.create n ~dir:root "f" in
  N.write n fh ~off:0L (bytes_of "durable");
  Fs.crash fs;
  (* stateless: a brand new server instance accepts the old handle *)
  let n2 = N.serve fs in
  Alcotest.(check string) "old handle works" "durable" (str (N.read n2 fh ~off:0L ~len:16))

let test_per_op_atomicity () =
  (* each RPC commits by itself: a crash between two writes keeps the
     first and loses nothing else — NFS semantics, not transactions *)
  let _, fs, n = fresh () in
  let root = N.root n in
  let fh = N.create n ~dir:root "f" in
  N.write n fh ~off:0L (bytes_of "first");
  Fs.crash fs;
  let n2 = N.serve fs in
  Alcotest.(check string) "first write survived alone" "first"
    (str (N.read n2 fh ~off:0L ~len:16))

let test_time_travel_namespace () =
  let clock, fs, n = fresh () in
  let root = N.root n in
  let fh = N.create n ~dir:root "report" in
  N.write n fh ~off:0L (bytes_of "draft one");
  Simclock.Clock.advance clock 10.;
  let t1 = Relstore.Db.now (Fs.db fs) in
  Simclock.Clock.advance clock 10.;
  N.write n fh ~off:0L (bytes_of "final ver");
  (* ls(1) and cat(1) against "report@T1", exactly as 3DFS extends the
     namespace *)
  let name = Printf.sprintf "report@%Ld" t1 in
  (match N.lookup n ~dir:root name with
  | Some old_fh ->
    Alcotest.(check bool) "historical handle" true (N.fh_timestamp old_fh = Some t1);
    Alcotest.(check string) "old contents" "draft one" (str (N.read n old_fh ~off:0L ~len:16));
    (match N.getattr n old_fh with
    | Some att -> Alcotest.(check int64) "old size" 9L att.Invfs.Fileatt.size
    | None -> Alcotest.fail "old getattr");
    expect_error E.EROFS (fun () -> N.write n old_fh ~off:0L (bytes_of "x"))
  | None -> Alcotest.fail "time-travel lookup failed");
  Alcotest.(check string) "present unaffected" "final ver" (str (N.read n fh ~off:0L ~len:16))

let test_time_travel_directory () =
  let clock, fs, n = fresh () in
  let root = N.root n in
  ignore (N.create n ~dir:root "old_file" : N.fh);
  Simclock.Clock.advance clock 5.;
  let t1 = Relstore.Db.now (Fs.db fs) in
  Simclock.Clock.advance clock 5.;
  N.remove n ~dir:root "old_file";
  ignore (N.create n ~dir:root "new_file" : N.fh);
  (* a historical directory handle lists — and resolves — the past *)
  let dirname = Printf.sprintf "sub@%Ld" t1 in
  ignore dirname;
  match N.lookup n ~dir:root (Printf.sprintf "old_file@%Ld" t1) with
  | Some old_fh ->
    Alcotest.(check bool) "found in the past" true (N.fh_timestamp old_fh = Some t1);
    Alcotest.(check (list string)) "current listing" [ "new_file" ] (N.readdir n root)
  | None -> Alcotest.fail "historical lookup"

let test_at_sign_literal_names () =
  (* a name whose @-suffix is not a number is a plain name *)
  let _, _, n = fresh () in
  let root = N.root n in
  let fh = N.create n ~dir:root "user@host" in
  N.write n fh ~off:0L (bytes_of "mail");
  match N.lookup n ~dir:root "user@host" with
  | Some fh2 -> Alcotest.(check bool) "same file" true (N.fh_equal fh fh2)
  | None -> Alcotest.fail "literal @ name"

let test_rename_and_remove () =
  let _, _, n = fresh () in
  let root = N.root n in
  let a = N.mkdir n ~dir:root "a" in
  let b = N.mkdir n ~dir:root "b" in
  let fh = N.create n ~dir:a "f" in
  N.write n fh ~off:0L (bytes_of "content");
  N.rename n ~src_dir:a ~src:"f" ~dst_dir:b ~dst:"g";
  Alcotest.(check (list string)) "a empty" [] (N.readdir n a);
  Alcotest.(check (list string)) "b has g" [ "g" ] (N.readdir n b);
  (* the handle itself survives the rename: handles are oids *)
  Alcotest.(check string) "handle tracks file" "content" (str (N.read n fh ~off:0L ~len:16));
  N.remove n ~dir:b "g";
  N.remove n ~dir:root "b";
  Alcotest.(check (list string)) "b gone" [ "a" ] (N.readdir n root)

let test_transfer_limit () =
  let _, _, n = fresh () in
  let root = N.root n in
  let fh = N.create n ~dir:root "f" in
  expect_error E.EINVAL (fun () -> N.write n fh ~off:0L (Bytes.create (N.max_transfer + 1)));
  expect_error E.EINVAL (fun () -> N.read n fh ~off:0L ~len:(N.max_transfer + 1))

(* property: byte-for-byte equivalence between the NFS view and the
   native library view of the same files *)
let prop_views_agree =
  QCheck.Test.make ~name:"NFS view equals library view" ~count:25
    QCheck.(
      list_of_size Gen.(int_range 1 10)
        (pair (int_bound 3) (string_of_size Gen.(int_range 0 400))))
    (fun writes ->
      let _, fs, n = fresh () in
      let s = Fs.new_session fs in
      let root = N.root n in
      (* interleave: even steps write through NFS, odd through the library *)
      List.iteri
        (fun i (slot, content) ->
          let name = Printf.sprintf "f%d" slot in
          if i mod 2 = 0 then begin
            let fh =
              match N.lookup n ~dir:root name with
              | Some fh -> fh
              | None -> N.create n ~dir:root name
            in
            let data = Bytes.of_string content in
            let sent = ref 0 in
            while !sent < Bytes.length data do
              let now = min N.max_transfer (Bytes.length data - !sent) in
              N.write n fh ~off:(Int64.of_int !sent) (Bytes.sub data !sent now);
              sent := !sent + now
            done
          end
          else Fs.write_file s ("/" ^ name) (Bytes.of_string content))
        writes;
      (* both doors now see identical bytes for every file *)
      List.for_all
        (fun name ->
          let via_lib = Fs.read_whole_file s ("/" ^ name) in
          match N.lookup n ~dir:root name with
          | Some fh ->
            let via_nfs =
              let size = Bytes.length via_lib in
              let buf = Buffer.create size in
              let off = ref 0 in
              let continue = ref true in
              while !continue && !off < size do
                let want = min N.max_transfer (size - !off) in
                let got = N.read n fh ~off:(Int64.of_int !off) ~len:want in
                Buffer.add_bytes buf got;
                off := !off + Bytes.length got;
                if Bytes.length got < want then continue := false
              done;
              Buffer.to_bytes buf
            in
            Bytes.equal via_lib via_nfs
          | None -> false)
        (Fs.readdir s "/"))

let () =
  Alcotest.run "nfs_facade"
    [
      ( "protocol",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "lookup/readdir" `Quick test_lookup_and_readdir;
          Alcotest.test_case "getattr + stale handles" `Quick test_getattr;
          Alcotest.test_case "handles survive crash" `Quick test_handles_survive_crash;
          Alcotest.test_case "per-op atomicity" `Quick test_per_op_atomicity;
          Alcotest.test_case "rename/remove" `Quick test_rename_and_remove;
          Alcotest.test_case "8KB transfer limit" `Quick test_transfer_limit;
        ] );
      ( "properties", List.map QCheck_alcotest.to_alcotest [ prop_views_agree ] );
      ( "time travel namespace",
        [
          Alcotest.test_case "name@timestamp" `Quick test_time_travel_namespace;
          Alcotest.test_case "historical directories" `Quick test_time_travel_directory;
          Alcotest.test_case "literal @ in names" `Quick test_at_sign_literal_names;
        ] );
    ]
