(** The transaction status file.

    POSTGRES's no-overwrite storage manager needs no write-ahead log: the
    only durable per-transaction state is "a special status file which
    indicates whether or not a transaction has committed" plus its commit
    time (paper, "The No-Overwrite Storage Manager").  Crash recovery is
    therefore instantaneous — readers just consult this log and ignore
    records whose inserting transaction never committed.

    The log survives {!crash}: commits force their status entry to stable
    storage (we charge one small I/O per commit).  Transactions that were
    in progress at the crash are marked aborted by recovery. *)

type state = In_progress | Committed of int64  (** commit time, µs *) | Aborted

type t

val create : clock:Simclock.Clock.t -> t

val begin_txn : t -> Xid.t
(** Assign the next xid and record it as in progress. *)

val commit : ?force:bool -> t -> Xid.t -> int64
(** Mark committed at the current simulated time; returns the commit
    timestamp.  Charges the forced status-file write unless [force:false]
    (read-only transactions, which have nothing to make durable).  Raises
    [Invalid_argument] if the xid is not in progress. *)

val abort : t -> Xid.t -> unit
(** Mark aborted.  Idempotent on already-aborted transactions; raises
    [Invalid_argument] on a committed one. *)

val state : t -> Xid.t -> state
(** Raises [Not_found] for an unknown xid. *)

val is_committed : t -> Xid.t -> bool
val commit_time : t -> Xid.t -> int64 option

val committed_before : t -> Xid.t -> int64 -> bool
(** [committed_before log xid t] — did [xid] commit at or before simulated
    time [t] (µs)?  This is the heart of time-travel visibility. *)

val active : t -> Xid.t list
(** Transactions currently in progress, ascending. *)

val crash_recover : t -> unit
(** Simulate crash + instant recovery: every in-progress transaction is
    marked aborted.  Committed and aborted entries survive untouched, and
    the (volatile) xid counter is revalidated against the highest logged
    xid so post-recovery transactions never reuse one. *)

val last_xid : t -> Xid.t
(** Highest xid ever assigned (0 if none). *)
