(** PRESTOserve: a battery-backed NVRAM write cache for NFS servers.

    "PRESTOserve consists of a board containing 1 MByte of battery-backed
    RAM and driver software to cache NFS writes in non-volatile memory."
    A stateless NFS server must force every write to stable storage;
    PRESTOserve makes the force an NVRAM write and drains to disk lazily.

    The model: writes are keyed (inode, block); rewriting a resident key
    costs only NVRAM time and takes no new space — which is why the
    paper's 1 MB random write test "fits in the PRESTOserve cache, and is
    not flushed to disk".  When a new key doesn't fit, the oldest entries
    drain (their deferred disk-write charges fire). *)

type t

val create : clock:Simclock.Clock.t -> ?capacity_bytes:int -> unit -> t
(** Default capacity 1 MB, like the board. *)

val capacity : t -> int
val used : t -> int

val write : t -> key:string -> bytes:int -> flush:(unit -> unit) -> unit
(** Absorb a write of [bytes] under [key].  Charges the NVRAM cost;
    [flush] is retained and invoked when this entry later drains to disk
    (it should charge exactly one disk write). *)

val drain_all : t -> unit
(** Flush every resident entry (server shutdown / explicit sync). *)

val drains : t -> int
(** How many entries have been flushed to disk so far. *)

val absorbed : t -> int
(** How many writes were absorbed (including rewrites of resident keys). *)
