lib/postquel/eval.ml: Ast List Option Registry Value
