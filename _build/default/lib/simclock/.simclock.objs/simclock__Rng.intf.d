lib/simclock/rng.mli:
