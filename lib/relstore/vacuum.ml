type stats = {
  scanned : int;
  archived : int;
  discarded : int;
  pages_compacted : int;
}

type verdict = Keep | Archive | Discard

let judge log ~horizon (r : Heap.record) =
  match Status_log.state log r.xmin with
  | exception Not_found -> Keep (* unknown inserter: be conservative *)
  | Status_log.Aborted -> Discard (* never existed *)
  | Status_log.In_progress -> Keep
  | Status_log.Committed _ ->
    if Xid.is_valid r.xmax && Status_log.committed_before log r.xmax horizon then Archive
    else Keep

let m_runs = Obs.Metrics.counter "vacuum.runs"
let m_archived = Obs.Metrics.counter "vacuum.archived"
let m_discarded = Obs.Metrics.counter "vacuum.discarded"

let run heap ~log ~horizon ~mode ?(on_remove = fun _ -> ()) () =
  Obs.Metrics.incr m_runs;
  Obs.span Obs.Vacuum "vacuum.run" ~args:[ ("rel", Obs.S (Heap.name heap)) ] @@ fun () ->
  let archive_heap =
    match (mode, Heap.archive heap) with
    | `Archive, Some a -> Some a
    | `Archive, None -> invalid_arg "Vacuum.run: `Archive mode but no archive heap attached"
    | `Discard, _ -> None
  in
  let scanned = ref 0 and archived = ref 0 and discarded = ref 0 in
  let doomed = ref [] in
  let classify (r : Heap.record) =
    incr scanned;
    match judge log ~horizon r with
    | Keep -> ()
    | Discard ->
      incr discarded;
      doomed := r :: !doomed
    | Archive ->
      (match archive_heap with
      | Some arch ->
        ignore (Heap.append_raw arch ~oid:r.oid ~xmin:r.xmin ~xmax:r.xmax r.payload : Tid.t);
        incr archived
      | None -> incr discarded);
      doomed := r :: !doomed
  in
  Heap.scan_raw heap classify;
  (* Kill doomed slots, then compact each touched page once. *)
  let touched = Hashtbl.create 16 in
  let kill (r : Heap.record) =
    on_remove r;
    Heap.kill_tid heap r.tid;
    Hashtbl.replace touched r.tid.Tid.blkno ()
  in
  List.iter kill (List.rev !doomed);
  Hashtbl.iter (fun blkno () -> Heap.compact_block heap blkno) touched;
  Obs.Metrics.incr ~by:!archived m_archived;
  Obs.Metrics.incr ~by:!discarded m_discarded;
  if Obs.on Obs.Vacuum then
    Obs.event Obs.Vacuum "vacuum.stats"
      ~args:
        [ ("scanned", Obs.I !scanned); ("archived", Obs.I !archived);
          ("discarded", Obs.I !discarded);
          ("pages_compacted", Obs.I (Hashtbl.length touched));
        ]
      ();
  {
    scanned = !scanned;
    archived = !archived;
    discarded = !discarded;
    pages_compacted = Hashtbl.length touched;
  }
