(** A stateless NFS v2-style server and client over the FFS model.

    "To guarantee that NFS servers remain stateless, NFS must force every
    write to stable storage synchronously" — unless the PRESTOserve NVRAM
    board takes the force.  Transfers are limited to 8 KB per RPC (the v2
    protocol and the benchmark's "page-sized units" coincide); the client
    splits larger operations.

    Every client call charges one UDP RPC round trip plus the server-side
    FFS work, on the shared simulated clock. *)

type server
type t
(** A client mount. *)

type fh = int
(** File handle = inode number (the stateless server needs no open
    state). *)

val max_transfer : int
(** 8192 bytes per RPC. *)

val make_server : ffs:Ffs.t -> ?presto:Presto.t -> unit -> server
val server_ffs : server -> Ffs.t
val server_presto : server -> Presto.t option

val connect : server:server -> net:Netsim.t -> t
(** A client on the given network path. *)

val create : t -> string -> fh
val lookup : t -> string -> fh option
val getattr : t -> fh -> int64
(** File size. *)

val read : t -> fh -> off:int64 -> buf:bytes -> len:int -> int
val write : t -> fh -> off:int64 -> data:bytes -> unit

val drop_caches : server -> unit
(** Flush the server buffer cache and drain PRESTOserve — the benchmark's
    between-tests cache flush. *)

val rpc_count : t -> int
(** RPC round trips issued by this client so far. *)
