test/test_nfs_facade.mli:
