(** Background media scrubber.

    Walks every block of every live device on a switch during idle
    simulated time, verifies the stored image against its recorded CRC-32
    ({!Device.verify_block}), and repairs bad copies from the mirror before
    a foreground read ever sees them.  Mirrored pairs are scrubbed
    together: a rotten primary block is rebuilt from the secondary (via the
    {!Resilient} failover path) and a rotten secondary copy is refreshed
    from the verified primary.  Unmirrored rot is reported as unrepairable
    — there is no second copy to heal from — and will surface as a media
    failure on the next foreground read.

    Verification charges a flat ["scrub.verify"] cost per page (background
    sequential streaming, not the foreground seek model); repairs charge
    normal I/O through the resilient read path. *)

type stats = {
  scanned : int;
  clean : int;
  repaired : int;
  unrepairable : (string * int * int * string) list;
      (** (device, segid, blkno, reason), in discovery order *)
}

val empty_stats : stats
val merge_stats : stats -> stats -> stats
val stats_to_string : stats -> string

type t
(** An incremental scrub cursor over one switch.  The block walk is
    re-planned at each {!step}, so segments created or dropped between
    steps are picked up; the cursor position wraps, giving continuous
    round-robin coverage. *)

val create : ?policy:Resilient.policy -> Switch.t -> t

val step : t -> pages:int -> stats
(** Scrub up to [pages] blocks starting at the cursor, advancing it.
    Returns this step's stats.  {!Device.Crash_injected} raised by a
    repair write propagates — the scrubber is ordinary I/O as far as
    crash injection is concerned. *)

val totals : t -> stats
(** Aggregate stats since {!create}. *)

val run : ?policy:Resilient.policy -> Switch.t -> stats
(** One full pass over every block of every live device. *)
