test/test_pagestore.ml: Alcotest Array Bytes List Pagestore Printf QCheck QCheck_alcotest Simclock
