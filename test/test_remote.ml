(* The client/server RPC layer: wire framing, exactly-once semantics
   under duplication and lost replies, session loss and clean aborts,
   lease expiry freeing a dead client's locks, server crash mid-request
   composing with recovery. *)

module Fs = Invfs.Fs
module E = Invfs.Errors
module Wire = Remote.Wire
module Server = Remote.Server
module Client = Remote.Client
module Link = Netsim.Link
module F = Faultsim

let mk ?lease_s ?run_cap ?park_cap ?lock_wait_s ?shed_watermark ?vacuum_every_s ?vacuum_pages () =
  let clock = Simclock.Clock.create () in
  let switch = Pagestore.Switch.create ~clock in
  ignore
    (Pagestore.Switch.add_device switch ~name:"disk0"
       ~kind:Pagestore.Device.Magnetic_disk ()
      : Pagestore.Device.t);
  let db = Relstore.Db.create ~switch ~clock () in
  let fs = Fs.make db () in
  let server =
    Server.create ~fs ?lease_s ?run_cap ?park_cap ?lock_wait_s ?shed_watermark
      ?vacuum_every_s ?vacuum_pages ()
  in
  let net = Netsim.create ~clock Netsim.tcp_1993 in
  (clock, fs, server, net)

let mk_client ?config server net seed =
  let link = Link.create net in
  Client.connect ?config ~server ~link ~rng:(Simclock.Rng.create seed) ()

let expect_error code f =
  match f () with
  | _ -> Alcotest.fail ("expected " ^ E.code_to_string code)
  | exception E.Fs_error (got, msg) ->
    Alcotest.(check string) "error code" (E.code_to_string code) (E.code_to_string got);
    msg

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ---- raw sessions: hand-built frames, no client library ----

   The overload, deadline and version-skew tests need precise control
   over request ids, retry flags, deadlines and pump timing — things the
   client library deliberately hides — so they speak {!Wire} directly:
   build frames, put them on the link, pump the server, drain replies. *)

type raw = {
  r_link : Link.t;
  mutable r_sid : int64;
  mutable r_rid : int64;
  r_asm : Wire.Assembly.t;
}

let raw_send ?(charge = true) ?retry ?deadline_us ?rid r req =
  let rid =
    match rid with
    | Some rid -> rid
    | None ->
      r.r_rid <- Int64.add r.r_rid 1L;
      r.r_rid
  in
  List.iter
    (fun f -> Link.send ~charge r.r_link Link.To_server f)
    (Wire.encode_request ?retry ?deadline_us ~sid:r.r_sid ~rid req);
  rid

(* Drain and decode every reply currently queued toward this client. *)
let raw_replies r =
  let out = ref [] in
  let rec drain () =
    match Link.recv r.r_link Link.To_client with
    | None -> ()
    | Some (frame, _poisoned) ->
      (match Wire.decode_header frame with
      | None -> ()
      | Some h -> (
        match Wire.Assembly.add r.r_asm h with
        | `Complete payload -> (
          match Wire.decode_reply payload with
          | Some rep -> out := (h.Wire.rid, rep) :: !out
          | None -> ())
        | `Pending -> ()));
      drain ()
  in
  drain ();
  List.rev !out

let raw_reply r rid =
  match List.assoc_opt rid (raw_replies r) with
  | Some rep -> rep
  | None -> Alcotest.fail (Printf.sprintf "no reply for rid %Ld" rid)

(* Hello request ids are connection nonces, deduplicated in a window
   shared across connections — every raw session needs a fresh one or
   the server replays the previous session's handshake. *)
let raw_nonce = ref 0x5EED00L

let raw_connect server net =
  let link = Link.create net in
  Server.attach server link;
  let r = { r_link = link; r_sid = 0L; r_rid = 0L; r_asm = Wire.Assembly.create () } in
  raw_nonce := Int64.add !raw_nonce 1L;
  let rid = raw_send ~rid:!raw_nonce r Wire.Hello in
  Server.pump server;
  (match raw_reply r rid with
  | Wire.Ok_reply { result = Wire.R_sid sid; _ } -> r.r_sid <- sid
  | _ -> Alcotest.fail "raw hello failed");
  r

(* Send one request, pump, and insist on an [Ok_reply]. *)
let raw_ok r server req =
  let rid = raw_send r req in
  Server.pump server;
  match raw_reply r rid with
  | Wire.Ok_reply { result; _ } -> result
  | Wire.Err_reply { code; msg; _ } ->
    Alcotest.fail
      (Printf.sprintf "%s failed: %s %s" (Wire.req_name req) (E.code_to_string code) msg)
  | _ -> Alcotest.fail (Wire.req_name req ^ ": unexpected reply kind")

let raw_fd r server req =
  match raw_ok r server req with
  | Wire.R_fd fd -> fd
  | _ -> Alcotest.fail (Wire.req_name req ^ ": expected a file descriptor")

(* ---- wire framing ---- *)

let test_wire_roundtrip () =
  let req =
    Wire.Creat { path = "/a/b"; device = Some "disk0"; ftype = None; compressed = true }
  in
  let frames = Wire.encode_request ~sid:7L ~rid:9L req in
  Alcotest.(check int) "one frame" 1 (List.length frames);
  let asm = Wire.Assembly.create () in
  let decoded =
    List.fold_left
      (fun acc frame ->
        match Wire.decode_header frame with
        | None -> Alcotest.fail "frame did not parse"
        | Some h ->
          Alcotest.(check int) "kind" 0 h.Wire.kind;
          Alcotest.(check int64) "sid" 7L h.Wire.sid;
          Alcotest.(check int64) "rid" 9L h.Wire.rid;
          (match Wire.Assembly.add asm h with
          | `Complete payload -> Wire.decode_request payload
          | `Pending -> acc))
      None frames
  in
  (match decoded with
  | Some (Wire.Creat { path; device; ftype; compressed }) ->
    Alcotest.(check string) "path" "/a/b" path;
    Alcotest.(check (option string)) "device" (Some "disk0") device;
    Alcotest.(check (option string)) "ftype" None ftype;
    Alcotest.(check bool) "compressed" true compressed
  | _ -> Alcotest.fail "decoded to the wrong request");
  (* a large write fragments, and ends with the end-of-stream trailer *)
  let big = String.make (3 * Wire.max_fragment) 'x' in
  let frames = Wire.encode_request ~sid:1L ~rid:2L (Wire.Write { fd = 3; off = 0L; data = big }) in
  Alcotest.(check bool) "fragmented" true (List.length frames >= 4);
  let last = List.nth frames (List.length frames - 1) in
  Alcotest.(check int) "trailer is bare header" Wire.header_bytes (String.length last)

let test_wire_crc_rejects_corruption () =
  let frames = Wire.encode_request ~sid:1L ~rid:1L (Wire.Mkdir { path = "/d" }) in
  let frame = List.hd frames in
  Alcotest.(check bool) "intact frame parses" true (Wire.decode_header frame <> None);
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string frame in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      let mangled = Bytes.to_string b in
      if mangled <> frame then
        Alcotest.(check bool)
          (Printf.sprintf "flip at byte %d rejected" i)
          true
          (Wire.decode_header mangled = None))
    frame

(* Reassemble a frame list the way the receiver does: parse + CRC-check
   every frame, feed it to Assembly, return the completed payload. *)
let assemble frames =
  let asm = Wire.Assembly.create () in
  let payload =
    List.fold_left
      (fun acc frame ->
        match Wire.decode_header frame with
        | None -> Alcotest.fail "frame failed parse/CRC"
        | Some h -> (
          match Wire.Assembly.add asm h with `Complete p -> Some p | `Pending -> acc))
      None frames
  in
  match payload with
  | Some p -> p
  | None -> Alcotest.fail "frames did not complete a message"

let roundtrip_write data =
  let frames =
    Wire.encode_request ~sid:5L ~rid:11L (Wire.Write { fd = 1; off = 0L; data })
  in
  (match Wire.decode_request (assemble frames) with
  | Some (Wire.Write w) ->
    Alcotest.(check int) "data length survives" (String.length data)
      (String.length w.data);
    Alcotest.(check bool) "data bytes survive" true (w.data = data)
  | _ -> Alcotest.fail "decoded to the wrong request");
  frames

let test_wire_empty_payload () =
  (* a zero-byte write still frames, assembles, and decodes to "";
     fitting one frame, it carries no end-of-stream trailer *)
  let frames = roundtrip_write "" in
  Alcotest.(check int) "a short write is a single frame" 1 (List.length frames);
  (* Ping carries no fields at all: the minimal message on the wire *)
  let frames = Wire.encode_request ~sid:1L ~rid:1L Wire.Ping in
  Alcotest.(check int) "ping is one frame" 1 (List.length frames);
  match Wire.decode_request (assemble frames) with
  | Some Wire.Ping -> ()
  | _ -> Alcotest.fail "ping did not roundtrip"

let test_wire_boundary_payload () =
  (* Measure the serialization overhead around the data, then pick data
     lengths that land the encoded payload exactly on the fragment
     boundary and one byte past it. *)
  let payload_len data =
    let frames =
      Wire.encode_request ~sid:5L ~rid:11L (Wire.Write { fd = 1; off = 0L; data })
    in
    List.fold_left
      (fun acc f ->
        match Wire.decode_header f with
        | Some h -> acc + String.length h.Wire.payload
        | None -> Alcotest.fail "frame failed parse/CRC")
      0 frames
  in
  let probe = String.make 100 'p' in
  let overhead = payload_len probe - 100 in
  let at_boundary = String.make (Wire.max_fragment - overhead) 'b' in
  let frames = roundtrip_write at_boundary in
  (* exactly filling one frame is still "not windowed": no trailer *)
  Alcotest.(check int) "exact fit: one full data frame" 1 (List.length frames);
  (match Wire.decode_header (List.hd frames) with
  | Some h ->
    Alcotest.(check int) "data frame filled to max_fragment" Wire.max_fragment
      (String.length h.Wire.payload)
  | None -> Alcotest.fail "boundary frame failed parse/CRC");
  let past_boundary = String.make (Wire.max_fragment - overhead + 1) 'c' in
  let frames = roundtrip_write past_boundary in
  Alcotest.(check int) "one byte over: two data frames + trailer" 3
    (List.length frames)

let test_wire_max_frame_roundtrip () =
  (* maximum-size message: every frame filled, CRC-checked, reassembled
     byte-for-byte; flipping any byte of a full frame must fail its CRC *)
  let data = String.init (3 * Wire.max_fragment) (fun i -> Char.chr (i land 0xff)) in
  let frames = roundtrip_write data in
  Alcotest.(check bool) "fragmented" true (List.length frames >= 4);
  let full = List.hd frames in
  Alcotest.(check int) "full frame is header + max_fragment"
    (Wire.header_bytes + Wire.max_fragment)
    (String.length full);
  let b = Bytes.of_string full in
  Bytes.set b (Wire.header_bytes + (Wire.max_fragment / 2))
    (Char.chr (Char.code (Bytes.get b (Wire.header_bytes + (Wire.max_fragment / 2))) lxor 1));
  Alcotest.(check bool) "corrupt max-size frame rejected" true
    (Wire.decode_header (Bytes.to_string b) = None)

let test_wire_duplicate_fragments () =
  (* a retry resending fragments that already arrived must not corrupt
     reassembly: duplicates are ignored, the payload completes once *)
  let data = String.init (2 * Wire.max_fragment) (fun i -> Char.chr ((i * 7) land 0xff)) in
  let frames =
    Wire.encode_request ~sid:5L ~rid:11L (Wire.Write { fd = 1; off = 0L; data })
  in
  let hdrs =
    List.map
      (fun f ->
        match Wire.decode_header f with
        | Some h -> h
        | None -> Alcotest.fail "frame failed parse/CRC")
      frames
  in
  let asm = Wire.Assembly.create () in
  let complete = ref None in
  let feed h =
    match Wire.Assembly.add asm h with
    | `Complete p -> complete := Some p
    | `Pending -> ()
  in
  (match hdrs with
  | h0 :: rest ->
    feed h0;
    feed h0 (* duplicate before the group completes *);
    List.iter feed rest
  | [] -> Alcotest.fail "no frames");
  match !complete with
  | None -> Alcotest.fail "duplicated fragments never completed"
  | Some p -> (
    match Wire.decode_request p with
    | Some (Wire.Write w) ->
      Alcotest.(check bool) "payload intact after duplicates" true (w.data = data)
    | _ -> Alcotest.fail "decoded to the wrong request")

(* ---- a faultless session ---- *)

let test_basic_session () =
  let _, _, server, net = mk () in
  let c = mk_client server net 1L in
  Client.c_mkdir c "/dir";
  let fd = Client.c_creat c "/dir/f" in
  let data = Bytes.of_string "hello, remote world" in
  ignore (Client.c_write c fd data (Bytes.length data) : int);
  Client.c_close c fd;
  let back = Client.read_whole_file c "/dir/f" in
  Alcotest.(check string) "contents" (Bytes.to_string data) (Bytes.to_string back);
  Alcotest.(check (list string)) "readdir" [ "f" ] (Client.c_readdir c "/dir");
  let att = Client.c_stat c "/dir/f" in
  Alcotest.(check int64) "size" (Int64.of_int (Bytes.length data)) att.Invfs.Fileatt.size;
  Alcotest.(check bool) "exists" true (Client.c_exists c "/dir/f");
  Alcotest.(check bool) "no ghost" false (Client.c_exists c "/dir/g");
  let rows = Client.c_query c "retrieve (filename) where size(file) > 0" in
  Alcotest.(check bool) "query saw the file" true
    (List.exists (List.exists (fun s -> s = "f" || s = "\"f\"")) rows);
  Alcotest.(check int) "no retries on a clean wire" 0 (Client.retries c)

(* ---- exactly-once: duplicated committed write ---- *)

let test_duplicate_write_applied_once () =
  let _, _, server, net = mk () in
  let c = mk_client server net 2L in
  let fd = Client.c_creat c "/f" in
  let first = Bytes.of_string "aaaa" in
  ignore (Client.c_write c fd first (Bytes.length first) : int);
  (* duplicate BOTH frames of the appending write below (its data frame
     and its end-of-stream trailer), so a complete second copy of the
     committed request reaches the server.  The copies are released from
     limbo behind later traffic, i.e. after the original has executed
     and committed. *)
  let plan = F.create () in
  F.arm_link plan (Client.link c);
  F.schedule_net plan ~after:1 F.Net_duplicate;
  F.schedule_net plan ~after:2 F.Net_duplicate;
  let tail = Bytes.of_string "bbbb" in
  ignore (Client.c_write c fd tail (Bytes.length tail) : int);
  Client.c_close c fd;
  let back = Client.read_whole_file c "/f" in
  Alcotest.(check string) "applied exactly once" "aaaabbbb" (Bytes.to_string back);
  Alcotest.(check bool) "server saw the duplicate" true (Server.replays server >= 1);
  Alcotest.(check int) "both frames duplicated" 2 (Link.duplicated (Client.link c));
  F.disarm plan

(* ---- exactly-once: lost commit reply ---- *)

let test_lost_commit_reply_retries_replay () =
  let _, _, server, net = mk () in
  let c = mk_client server net 3L in
  let fd = Client.c_creat c "/f" in
  ignore (Client.c_write c fd (Bytes.of_string "seed") 4 : int);
  Client.c_begin c;
  ignore (Client.c_write c fd (Bytes.of_string "tail") 4 : int);
  let plan = F.create () in
  F.arm_link plan (Client.link c);
  (* message 1 = the commit request; message 2 = its reply: drop it *)
  F.schedule_net plan ~after:2 F.Net_drop;
  Client.c_commit c;
  Alcotest.(check bool) "client retried" true (Client.retries c >= 1);
  Alcotest.(check bool) "server replayed, not re-ran" true (Server.replays server >= 1);
  let back = Client.read_whole_file c "/f" in
  Alcotest.(check string) "committed exactly once" "seedtail" (Bytes.to_string back);
  F.disarm plan

(* ---- corrupt frames look like drops and retries recover ---- *)

let test_corrupt_frame_retried () =
  let _, _, server, net = mk () in
  let c = mk_client server net 4L in
  Client.c_mkdir c "/d";
  let plan = F.create () in
  F.arm_link plan (Client.link c);
  F.schedule_net plan ~after:1 F.Net_corrupt;
  Alcotest.(check bool) "exists despite corruption" true (Client.c_exists c "/d");
  Alcotest.(check bool) "a timeout was charged" true (Netsim.timeouts net >= 1);
  Alcotest.(check bool) "a retry went out" true (Netsim.retries net >= 1);
  Alcotest.(check int) "one corruption" 1 (Link.corrupted (Client.link c));
  F.disarm plan

(* ---- one-way partition heals and the call survives ---- *)

let test_partition_heals () =
  let _, _, server, net = mk () in
  let c = mk_client server net 5L in
  Client.c_mkdir c "/d";
  let plan = F.create () in
  F.arm_link plan (Client.link c);
  F.schedule_net plan ~after:1 (F.Net_partition 2);
  Alcotest.(check (list string)) "answer after healing" [ "d" ] (Client.c_readdir c "/");
  Alcotest.(check int) "two messages swallowed" 2 (Link.partitioned (Client.link c));
  F.disarm plan

(* ---- session death mid-transaction: clean abort, no partial writes ---- *)

let test_session_death_mid_txn_clean_abort () =
  let _, _, server, net = mk () in
  let c = mk_client server net 6L in
  Client.write_file c "/f" (Bytes.of_string "stable");
  Client.c_begin c;
  let fd = Client.c_open c "/f" Fs.Rdwr in
  ignore (Client.c_write c fd (Bytes.of_string "garbage") 7 : int);
  Server.crash_now server;
  let msg =
    expect_error E.ECONNRESET (fun () ->
        Client.c_write c fd (Bytes.of_string "more") 4)
  in
  Alcotest.(check bool) "told it was aborted" true
    (String.length msg > 0
    && String.sub msg (String.length msg - String.length "transaction aborted")
         (String.length "transaction aborted")
       = "transaction aborted");
  Alcotest.(check bool) "client left the transaction" false (Client.in_txn c);
  (* the client reconnected; the committed state never saw the partial txn *)
  let back = Client.read_whole_file c "/f" in
  Alcotest.(check string) "no partial progress" "stable" (Bytes.to_string back);
  Alcotest.(check int) "one session lost" 1 (Client.sessions_lost c);
  Alcotest.(check bool) "server recovered once" true (Server.crashes server = 1)

(* ---- poisoned frame: server crashes mid-request ---- *)

let test_server_crash_mid_request () =
  let _, _, server, net = mk () in
  let c = mk_client server net 7L in
  Client.write_file c "/f" (Bytes.of_string "stable");
  let fd = Client.c_open c "/f" Fs.Rdwr in
  (* poison the auto-commit write itself: the server machine dies at the
     moment the request arrives, before anything executes *)
  let plan = F.create () in
  F.arm_link plan (Client.link c);
  F.schedule_net plan ~after:1 F.Net_server_crash;
  let msg =
    expect_error E.ECONNRESET (fun () ->
        ignore (Client.c_write c fd (Bytes.of_string "junk") 4 : int))
  in
  ignore msg;
  Alcotest.(check bool) "server crashed and recovered" true (Server.crashes server = 1);
  let back = Client.read_whole_file c "/f" in
  Alcotest.(check string) "mid-request crash left no trace" "stable" (Bytes.to_string back);
  F.disarm plan

(* ---- leases: a dead client's locks do not outlive it ---- *)

let test_lease_expiry_frees_locks () =
  let clock, _, server, net = mk ~lease_s:30. () in
  let a = mk_client server net 8L in
  let b = mk_client server net 9L in
  Client.write_file a "/f" (Bytes.of_string "v1");
  (* A takes the write lock inside a transaction, then goes silent.
     (Truncation locks immediately; a small p_write alone would only
     coalesce into the session's pending buffer.) *)
  Client.c_begin a;
  let fd = Client.c_open a "/f" Fs.Rdwr in
  Client.c_ftruncate a fd 0L;
  ignore (Client.c_write a fd (Bytes.of_string "v2") 2 : int);
  (* B cannot write while A holds the lock *)
  ignore
    (expect_error E.EAGAIN (fun () -> Client.write_file b "/f" (Bytes.of_string "v3"))
      : string);
  (if Client.in_txn b then Client.c_abort b);
  (* A's lease runs out; the server reaps the session and aborts its txn *)
  Simclock.Clock.advance clock 31.;
  Client.write_file b "/f" (Bytes.of_string "v3");
  Alcotest.(check string) "B's write landed" "v3"
    (Bytes.to_string (Client.read_whole_file b "/f"));
  Alcotest.(check bool) "a lease expired" true (Server.leases_expired server >= 1);
  (* A's next use of the dead session is a clean abort *)
  ignore
    (expect_error E.ECONNRESET (fun () ->
         Client.c_write a fd (Bytes.of_string "zz") 2)
      : string);
  Alcotest.(check bool) "A out of txn" false (Client.in_txn a)

(* ---- reissuable reads survive a session reset transparently ---- *)

let test_transparent_reissue_after_crash () =
  let _, _, server, net = mk () in
  let c = mk_client server net 10L in
  Client.c_mkdir c "/d";
  Server.crash_now server;
  (* no transaction, read-only: the client reconnects and re-issues *)
  Alcotest.(check (list string)) "readdir after silent reconnect" [ "d" ]
    (Client.c_readdir c "/");
  Alcotest.(check int) "session was replaced" 1 (Client.sessions_lost c);
  Alcotest.(check bool) "reconnected" true (Client.reconnects c >= 1)

(* ---- admin crash op: crash, recover, answer ---- *)

let test_crash_server_op () =
  let _, _, server, net = mk () in
  let c = mk_client server net 11L in
  Client.write_file c "/f" (Bytes.of_string "durable");
  Client.c_crash_server c;
  Alcotest.(check int) "crashed once" 1 (Server.crashes server);
  Alcotest.(check string) "durable data survived" "durable"
    (Bytes.to_string (Client.read_whole_file c "/f"))

(* ---- admission control: a full run queue sheds, shed work never ran ---- *)

let test_overload_shed_and_reoffer () =
  let _, _, server, net = mk ~run_cap:1 () in
  let r = raw_connect server net in
  let rid_a = raw_send r (Wire.Mkdir { path = "/a" }) in
  let rid_b = raw_send r (Wire.Mkdir { path = "/b" }) in
  Server.pump server;
  let reps = raw_replies r in
  (match List.assoc_opt rid_a reps with
  | Some (Wire.Ok_reply _) -> ()
  | _ -> Alcotest.fail "first mkdir should be admitted and executed");
  (match List.assoc_opt rid_b reps with
  | Some (Wire.Overloaded { retry_after_s }) ->
    Alcotest.(check bool) "retry-after hint is positive" true (retry_after_s > 0.)
  | _ -> Alcotest.fail "second mkdir should shed at the queue bound");
  Alcotest.(check int) "one shed" 1 (Server.sheds server);
  (* Overloaded is definitively-not-executed and unrecorded: re-offering
     the very same request id is admitted and executes.  (If the shed had
     secretly executed, this mkdir would answer EEXIST.) *)
  ignore (raw_send ~rid:rid_b r (Wire.Mkdir { path = "/b" }) : int64);
  Server.pump server;
  (match raw_reply r rid_b with
  | Wire.Ok_reply _ -> ()
  | Wire.Err_reply { msg; _ } -> Alcotest.fail ("re-offer should be admitted: " ^ msg)
  | _ -> Alcotest.fail "re-offer should be admitted");
  Alcotest.(check int) "re-offer executed rather than replayed" 0 (Server.replays server);
  match raw_ok r server (Wire.Readdir { path = "/"; timestamp = None }) with
  | Wire.R_names names ->
    Alcotest.(check (list string)) "exactly the admitted work landed" [ "a"; "b" ]
      (List.sort compare names)
  | _ -> Alcotest.fail "readdir failed"

(* ---- the watermark sheds retransmissions while first attempts land ---- *)

let test_watermark_sheds_retries_first () =
  let _, _, server, net = mk ~run_cap:4 ~shed_watermark:0.25 () in
  let r = raw_connect server net in
  let rid_a = raw_send r (Wire.Mkdir { path = "/a" }) in
  let rid_b = raw_send ~retry:true r (Wire.Mkdir { path = "/b" }) in
  let rid_c = raw_send r (Wire.Mkdir { path = "/c" }) in
  Server.pump server;
  let reps = raw_replies r in
  (match List.assoc_opt rid_a reps with
  | Some (Wire.Ok_reply _) -> ()
  | _ -> Alcotest.fail "first attempt below the watermark should be admitted");
  (match List.assoc_opt rid_b reps with
  | Some (Wire.Overloaded _) -> ()
  | _ -> Alcotest.fail "a retransmission past the watermark should shed");
  (match List.assoc_opt rid_c reps with
  | Some (Wire.Ok_reply _) -> ()
  | _ -> Alcotest.fail "a first attempt past the watermark should still be admitted");
  Alcotest.(check int) "the shed was counted as a retry shed" 1 (Server.retry_sheds server);
  Alcotest.(check int) "one shed total" 1 (Server.sheds server)

(* ---- expired deadlines are refused, recorded, and deduplicated ---- *)

let test_deadline_reject_recorded () =
  let clock, _, server, net = mk () in
  Simclock.Clock.advance clock 1.;
  let r = raw_connect server net in
  let rid = raw_send ~deadline_us:1L r (Wire.Mkdir { path = "/late" }) in
  Server.pump server;
  (match raw_reply r rid with
  | Wire.Err_reply { code; msg; _ } ->
    Alcotest.(check string) "code" "ETIMEDOUT" (E.code_to_string code);
    Alcotest.(check bool) "names the expired deadline" true
      (starts_with ~prefix:"deadline expired" msg)
  | _ -> Alcotest.fail "expired work should be refused at admission");
  Alcotest.(check int) "rejection counted" 1 (Server.deadline_rejects server);
  (* the rejection is definitive: a retransmission replays the verdict
     instead of judging (or executing) the request again *)
  ignore (raw_send ~rid ~retry:true ~deadline_us:1L r (Wire.Mkdir { path = "/late" }) : int64);
  Server.pump server;
  (match raw_reply r rid with
  | Wire.Err_reply { code; _ } ->
    Alcotest.(check string) "replayed code" "ETIMEDOUT" (E.code_to_string code)
  | _ -> Alcotest.fail "retransmission should replay the recorded rejection");
  Alcotest.(check bool) "served from the dedup window" true (Server.replays server >= 1);
  Alcotest.(check int) "not re-judged" 1 (Server.deadline_rejects server);
  match raw_ok r server (Wire.Readdir { path = "/"; timestamp = None }) with
  | Wire.R_names names -> Alcotest.(check (list string)) "nothing executed" [] names
  | _ -> Alcotest.fail "readdir failed"

(* ---- a deadline that expires in the queue is caught before execution ---- *)

let test_deadline_expires_in_queue () =
  let clock, _, server, net = mk () in
  let setup = mk_client server net 40L in
  Client.write_file setup "/big" (Bytes.make 4096 'z');
  let a = raw_connect server net in
  let b = raw_connect server net in
  ignore (raw_ok b server Wire.Begin : Wire.result);
  let fd = raw_fd b server (Wire.Open { path = "/big"; mode = 1; timestamp = None }) in
  ignore
    (raw_ok b server (Wire.Write { fd; off = 0L; data = String.make 4096 'w' })
      : Wire.result);
  (* One pump, two admissions.  Links drain newest-attached first, so
     B's commit enters the run queue ahead of A's mkdir; the commit
     forces pages to the magnetic disk (several milliseconds of
     simulated time), and the mkdir's deadline — alive at admission —
     has passed by the time the queue reaches it.  The frames go out
     uncharged so the deadline races only the commit's disk time, not
     the wire. *)
  let deadline_us = Int64.of_float ((Simclock.Clock.now clock +. 0.002) *. 1e6) in
  ignore (raw_send ~charge:false b Wire.Commit : int64);
  let rid_a = raw_send ~charge:false ~deadline_us a (Wire.Mkdir { path = "/d" }) in
  Server.pump server;
  (match raw_reply a rid_a with
  | Wire.Err_reply { code; msg; _ } ->
    Alcotest.(check string) "code" "ETIMEDOUT" (E.code_to_string code);
    Alcotest.(check bool) "caught at the pre-execution check" true
      (starts_with ~prefix:"deadline expired" msg
      && String.sub msg (String.length msg - String.length "execution")
           (String.length "execution")
         = "execution")
  | _ -> Alcotest.fail "queued work whose deadline passed should be refused");
  Alcotest.(check int) "rejection counted" 1 (Server.deadline_rejects server);
  match raw_ok a server (Wire.Readdir { path = "/"; timestamp = None }) with
  | Wire.R_names names ->
    Alcotest.(check (list string)) "the mkdir never ran" [ "big" ]
      (List.sort compare names)
  | _ -> Alcotest.fail "readdir failed"

(* ---- version skew: unknown opcodes answer Unsupported, recorded ---- *)

let test_unknown_opcode_unsupported () =
  let _, _, server, net = mk () in
  let r = raw_connect server net in
  (* a frame from a future protocol revision: take a valid single-frame
     request, rewrite its opcode byte to 99, recompute the CRC *)
  r.r_rid <- Int64.add r.r_rid 1L;
  let rid = r.r_rid in
  let frame = Bytes.of_string (List.hd (Wire.encode_request ~sid:r.r_sid ~rid Wire.Ping)) in
  Bytes.set frame Wire.header_bytes (Char.chr 99);
  for i = 32 to 35 do
    Bytes.set frame i '\000'
  done;
  let crc = Wire.crc32 frame ~off:0 ~len:(Bytes.length frame) in
  Bytes.set frame 32 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 24) land 0xff));
  Bytes.set frame 33 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 16) land 0xff));
  Bytes.set frame 34 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 8) land 0xff));
  Bytes.set frame 35 (Char.chr (Int32.to_int crc land 0xff));
  let frame = Bytes.to_string frame in
  (* the patched frame passes the CRC and is cleanly framed — distinguishable
     from wire damage — but carries an opcode this server does not have *)
  (match Wire.decode_header frame with
  | None -> Alcotest.fail "patched frame should pass the CRC"
  | Some h -> (
    match Wire.decode_request_any h.Wire.payload with
    | `Unknown 99 -> ()
    | `Req _ -> Alcotest.fail "opcode 99 should not decode as a known request"
    | _ -> Alcotest.fail "opcode 99 should decode as `Unknown, not `Malformed"));
  Link.send r.r_link Link.To_server frame;
  Server.pump server;
  (match raw_reply r rid with
  | Wire.Unsupported { opcode } -> Alcotest.(check int) "opcode echoed" 99 opcode
  | _ -> Alcotest.fail "expected a structured Unsupported answer");
  Alcotest.(check int) "counted once" 1 (Server.unsupported server);
  (* the verdict is definitive and recorded: a retransmission replays it *)
  Link.send r.r_link Link.To_server frame;
  Server.pump server;
  (match raw_reply r rid with
  | Wire.Unsupported { opcode = 99 } -> ()
  | _ -> Alcotest.fail "retransmission should replay Unsupported");
  Alcotest.(check bool) "served from the dedup window" true (Server.replays server >= 1);
  Alcotest.(check int) "not double-counted" 1 (Server.unsupported server);
  (* version skew is per-request, not fatal: the session still works *)
  match raw_ok r server (Wire.Readdir { path = "/"; timestamp = None }) with
  | Wire.R_names [] -> ()
  | _ -> Alcotest.fail "session should survive an unsupported opcode"

(* ---- parking: a lock-wait that never resolves times out, recorded ---- *)

let test_park_timeout_expires () =
  let clock, _, server, net = mk ~lock_wait_s:2. () in
  let setup = mk_client server net 20L in
  Client.write_file setup "/f" (Bytes.of_string "data");
  let a = raw_connect server net in
  ignore (raw_ok a server Wire.Begin : Wire.result);
  let fd_a = raw_fd a server (Wire.Open { path = "/f"; mode = 1; timestamp = None }) in
  ignore (raw_ok a server (Wire.Ftruncate { fd = fd_a; size = 0L }) : Wire.result);
  (* B's auto-commit truncate hits A's exclusive lock and parks *)
  let b = raw_connect server net in
  let fd_b = raw_fd b server (Wire.Open { path = "/f"; mode = 1; timestamp = None }) in
  let rid_b = raw_send b (Wire.Ftruncate { fd = fd_b; size = 1L }) in
  Server.pump server;
  Alcotest.(check int) "parked on the held lock" 1 (Server.parked_now server);
  Alcotest.(check int) "no reply while parked" 0 (List.length (raw_replies b));
  (* nobody releases the lock; the lock-wait timer expires the request *)
  Simclock.Clock.advance clock 3.;
  Server.pump server;
  (match raw_reply b rid_b with
  | Wire.Err_reply { code; msg; _ } ->
    Alcotest.(check string) "code" "ETIMEDOUT" (E.code_to_string code);
    Alcotest.(check bool) "names the lock wait" true
      (starts_with ~prefix:"lock wait timed out" msg)
  | _ -> Alcotest.fail "the parked request should expire");
  Alcotest.(check int) "timeout counted" 1 (Server.park_timeouts server);
  Alcotest.(check int) "nothing left parked" 0 (Server.parked_now server);
  (* recorded: a retransmission replays the timeout verdict *)
  ignore (raw_send ~rid:rid_b ~retry:true b (Wire.Ftruncate { fd = fd_b; size = 1L }) : int64);
  Server.pump server;
  (match raw_reply b rid_b with
  | Wire.Err_reply { code; _ } ->
    Alcotest.(check string) "replayed code" "ETIMEDOUT" (E.code_to_string code)
  | _ -> Alcotest.fail "retransmission should replay the timeout");
  Alcotest.(check bool) "served from the dedup window" true (Server.replays server >= 1)

(* ---- the client's retry budget stops it hammering a saturated server ---- *)

let test_retry_budget_exhaustion () =
  let _, _, server, net = mk ~run_cap:1 ~lock_wait_s:1000. () in
  let setup = mk_client server net 21L in
  Client.write_file setup "/f" (Bytes.of_string "data");
  (* pin the backlog: A holds the lock in a transaction it never ends,
     B's truncate parks behind it, so queue depth sits at run_cap *)
  let a = raw_connect server net in
  ignore (raw_ok a server Wire.Begin : Wire.result);
  let fd_a = raw_fd a server (Wire.Open { path = "/f"; mode = 1; timestamp = None }) in
  ignore (raw_ok a server (Wire.Ftruncate { fd = fd_a; size = 0L }) : Wire.result);
  let b = raw_connect server net in
  let fd_b = raw_fd b server (Wire.Open { path = "/f"; mode = 1; timestamp = None }) in
  let rid_b = raw_send b (Wire.Ftruncate { fd = fd_b; size = 1L }) in
  Server.pump server;
  Alcotest.(check int) "backlog pinned at one parked request" 1 (Server.parked_now server);
  (* a fresh client with a one-token budget: the first Overloaded answer
     spends the token on a re-offer, the second finds the bucket dry *)
  let config =
    { Client.default_config with Client.retry_budget = 1; retry_refill_per_s = 0. }
  in
  let c = mk_client ~config server net 22L in
  let msg = expect_error E.EBUSY (fun () -> Client.c_mkdir c "/x") in
  Alcotest.(check string) "names the dry budget"
    "server overloaded and retry budget exhausted" msg;
  Alcotest.(check int) "two overload answers" 2 (Client.overloaded c);
  Alcotest.(check int) "one budget denial" 1 (Client.budget_denials c);
  (* relief traffic is exempt from admission control: A's abort lands
     through the full queue, releases the lock, and the parked request
     resumes in the same pump *)
  ignore (raw_ok a server Wire.Abort : Wire.result);
  (match raw_reply b rid_b with
  | Wire.Ok_reply _ -> ()
  | _ -> Alcotest.fail "the parked truncate should resume after the release");
  Alcotest.(check bool) "resume counted" true (Server.park_resumes server >= 1);
  Alcotest.(check int) "backlog drained" 0 (Server.parked_now server);
  (* with the backlog gone the same client is admitted, dry budget and all *)
  Client.c_mkdir c "/x";
  Alcotest.(check bool) "the shed mkdir finally landed" true (Client.c_exists c "/x")

(* ---- an expired client deadline fails fast, off the wire ---- *)

let test_client_deadline_failfast () =
  let clock, _, server, net = mk () in
  let c = mk_client server net 23L in
  Client.c_mkdir c "/d";
  let wire_requests = Server.requests server in
  Client.set_deadline c (Some (Simclock.Clock.now clock -. 0.1));
  let msg = expect_error E.ETIMEDOUT (fun () -> Client.c_mkdir c "/e") in
  Alcotest.(check bool) "refused before sending" true
    (starts_with ~prefix:"deadline expired before sending" msg);
  Alcotest.(check int) "fail-fast counted" 1 (Client.deadline_failfasts c);
  Alcotest.(check int) "nothing reached the wire" wire_requests (Server.requests server);
  (* clearing the deadline restores plain behaviour *)
  Client.set_deadline c None;
  Client.c_mkdir c "/e";
  Alcotest.(check (list string)) "only the admitted mkdirs exist" [ "d"; "e" ]
    (List.sort compare (Client.c_readdir c "/"))

(* ---- a parked deadlock victim is aborted cleanly across three parties ---- *)

let test_parked_deadlock_victim () =
  let _, _, server, net = mk ~lock_wait_s:1000. () in
  let setup = mk_client server net 30L in
  Client.write_file setup "/fx" (Bytes.of_string "xx");
  Client.write_file setup "/fa" (Bytes.of_string "aa");
  Client.write_file setup "/f2" (Bytes.of_string "22");
  (* connect order fixes pump drain order (newest-attached first): the
     final pump must admit D's commit before E's truncate *)
  let x = raw_connect server net in
  let a = raw_connect server net in
  let e = raw_connect server net in
  let d = raw_connect server net in
  (* X holds /fx exclusively; A holds /fa *)
  ignore (raw_ok x server Wire.Begin : Wire.result);
  let xfx = raw_fd x server (Wire.Open { path = "/fx"; mode = 1; timestamp = None }) in
  ignore (raw_ok x server (Wire.Ftruncate { fd = xfx; size = 0L }) : Wire.result);
  ignore (raw_ok a server Wire.Begin : Wire.result);
  let afa = raw_fd a server (Wire.Open { path = "/fa"; mode = 1; timestamp = None }) in
  ignore (raw_ok a server (Wire.Ftruncate { fd = afa; size = 0L }) : Wire.result);
  (* X → A: X's in-transaction read of /fa parks behind A's lock *)
  let xfa = raw_fd x server (Wire.Open { path = "/fa"; mode = 0; timestamp = None }) in
  let rid_x = raw_send x (Wire.Read { fd = xfa; off = 0L; len = 4 }) in
  Server.pump server;
  Alcotest.(check int) "X parked" 1 (Server.parked_now server);
  (* E → X: E's read of /fx parks behind X *)
  ignore (raw_ok e server Wire.Begin : Wire.result);
  let efx = raw_fd e server (Wire.Open { path = "/fx"; mode = 0; timestamp = None }) in
  let ef2 = raw_fd e server (Wire.Open { path = "/f2"; mode = 1; timestamp = None }) in
  let rid_e = raw_send e (Wire.Read { fd = efx; off = 0L; len = 4 }) in
  Server.pump server;
  Alcotest.(check int) "X and E parked" 2 (Server.parked_now server);
  (* D holds /f2 *)
  ignore (raw_ok d server Wire.Begin : Wire.result);
  let df2 = raw_fd d server (Wire.Open { path = "/f2"; mode = 1; timestamp = None }) in
  ignore (raw_ok d server (Wire.Ftruncate { fd = df2; size = 0L }) : Wire.result);
  (* A → D: A's read of /f2 parks behind D *)
  let af2 = raw_fd a server (Wire.Open { path = "/f2"; mode = 0; timestamp = None }) in
  let rid_a = raw_send a (Wire.Read { fd = af2; off = 0L; len = 4 }) in
  Server.pump server;
  Alcotest.(check int) "X, E and A parked" 3 (Server.parked_now server);
  (* One pump: D commits (releasing /f2, waking the parked requests) and
     E's in-transaction truncate takes the lock D dropped.  A's parked
     read then re-acquires into the cycle A→E→X→A and is the victim:
     its transaction is aborted server-side, the others survive — and
     A's released lock lets X's parked read complete in the same pump. *)
  ignore (raw_send d Wire.Commit : int64);
  ignore (raw_send e (Wire.Ftruncate { fd = ef2; size = 1L }) : int64);
  Server.pump server;
  (match raw_reply a rid_a with
  | Wire.Err_reply { code; txn_open; _ } ->
    Alcotest.(check string) "victim code" "EDEADLK" (E.code_to_string code);
    Alcotest.(check bool) "victim transaction aborted server-side" false txn_open
  | _ -> Alcotest.fail "A should be the deadlock victim");
  (match raw_reply x rid_x with
  | Wire.Ok_reply { result = Wire.R_data _; txn_open } ->
    Alcotest.(check bool) "X's transaction survives" true txn_open
  | _ -> Alcotest.fail "X's parked read should resume once the victim aborts");
  Alcotest.(check int) "one deadlock abort" 1 (Server.deadlock_aborts server);
  Alcotest.(check int) "each of X, E, A parked once" 3 (Server.parks server);
  Alcotest.(check int) "no park timeouts" 0 (Server.park_timeouts server);
  Alcotest.(check int) "E still parked behind X" 1 (Server.parked_now server);
  (* X commits, releasing /fx: E's read completes and the system drains *)
  ignore (raw_ok x server Wire.Commit : Wire.result);
  (match raw_reply e rid_e with
  | Wire.Ok_reply { result = Wire.R_data _; _ } -> ()
  | _ -> Alcotest.fail "E's parked read should resume after X commits");
  Alcotest.(check int) "nothing left parked" 0 (Server.parked_now server);
  Alcotest.(check bool) "resumes counted" true (Server.park_resumes server >= 3)

(* ---- group commit: explicit commit replies ride the batch force ---- *)

let test_group_commit_defers_replies () =
  let clock = Simclock.Clock.create () in
  let switch = Pagestore.Switch.create ~clock in
  ignore
    (Pagestore.Switch.add_device switch ~name:"disk0"
       ~kind:Pagestore.Device.Magnetic_disk ()
      : Pagestore.Device.t);
  let db =
    Relstore.Db.create ~switch ~clock ~group_commit:8 ~flush_wait_us:1_000_000
      ~deferred_index:true ~early_release:true ()
  in
  let fs = Fs.make db () in
  let server = Server.create ~fs () in
  let net = Netsim.create ~clock Netsim.tcp_1993 in
  (* set up /fb outside any explicit transaction so B's writes don't
     contend with A's create on the naming relation *)
  let setup = raw_connect server net in
  ignore
    (raw_ok setup server
       (Wire.Creat { path = "/fb"; device = None; ftype = None; compressed = false })
      : Wire.result);
  let a = raw_connect server net and b = raw_connect server net in
  ignore (raw_ok a server Wire.Begin : Wire.result);
  ignore
    (raw_ok a server
       (Wire.Creat { path = "/fa"; device = None; ftype = None; compressed = false })
      : Wire.result);
  ignore (raw_ok b server Wire.Begin : Wire.result);
  let fd_b = raw_fd b server (Wire.Open { path = "/fb"; mode = 1; timestamp = None }) in
  ignore
    (raw_ok b server (Wire.Write { fd = fd_b; off = 0L; data = "group" })
      : Wire.result);
  Alcotest.(check int) "no deferrals yet" 0 (Server.group_defers server);
  (* both commits land in one pump: each joins the pending batch, so
     neither acknowledgement may go out before the end-of-pump force *)
  let ra = raw_send a Wire.Commit in
  let rb = raw_send b Wire.Commit in
  Server.pump server;
  Alcotest.(check int) "both commit replies deferred" 2 (Server.group_defers server);
  (match raw_reply a ra with
  | Wire.Ok_reply _ -> ()
  | _ -> Alcotest.fail "A's commit should succeed after the group force");
  (match raw_reply b rb with
  | Wire.Ok_reply _ -> ()
  | _ -> Alcotest.fail "B's commit should succeed after the group force");
  (* the force drained the batch: nothing pending, files durable *)
  Alcotest.(check int) "batch drained" 0
    (Relstore.Status_log.pending_force (Relstore.Db.status_log db));
  let c = raw_connect server net in
  match raw_ok c server (Wire.Exists { path = "/fa"; timestamp = None }) with
  | Wire.R_bool true -> ()
  | _ -> Alcotest.fail "/fa should exist after the batched commit"

(* ---- same inputs, same answers: the overload machinery is deterministic ---- *)

let overload_scenario () =
  let clock, _, server, net = mk ~run_cap:1 () in
  Simclock.Clock.advance clock 1.;
  let r = raw_connect server net in
  let buf = Buffer.create 256 in
  let note reps =
    List.iter
      (fun (rid, rep) ->
        Buffer.add_string buf
          (Printf.sprintf "%Ld=%s;" rid
             (Digest.to_hex
                (Digest.string (String.concat "" (Wire.encode_reply ~sid:9L ~rid rep))))))
      reps
  in
  let rid_a = raw_send r (Wire.Mkdir { path = "/a" }) in
  ignore (raw_send ~retry:true r (Wire.Mkdir { path = "/b" }) : int64);
  ignore (raw_send ~deadline_us:1L r (Wire.Mkdir { path = "/c" }) : int64);
  Server.pump server;
  note (raw_replies r);
  ignore rid_a;
  ignore (raw_send r (Wire.Readdir { path = "/"; timestamp = None }) : int64);
  Server.pump server;
  note (raw_replies r);
  Buffer.add_string buf
    (Printf.sprintf "sheds=%d retry=%d dead=%d replays=%d reqs=%d" (Server.sheds server)
       (Server.retry_sheds server) (Server.deadline_rejects server)
       (Server.replays server) (Server.requests server));
  Buffer.contents buf

let test_overload_determinism () =
  Alcotest.(check string) "identical replies and counters" (overload_scenario ())
    (overload_scenario ())

(* ---- shed clients desynchronize: jittered retry-after ----

   The server hands every shed client the same retry-after hint; if they
   all slept exactly that long they would re-arrive as the same
   thundering herd.  The client jitters the hint within +/-25%, so two
   clients with different rng streams sleep different amounts — and the
   jitter never leaves the band, so backoff stays within the server's
   intent. *)

let test_retry_after_jitter_desyncs () =
  let a = Simclock.Rng.create 1L and b = Simclock.Rng.create 2L in
  let hint = 0.04 in
  let distinct = ref false in
  for _ = 1 to 64 do
    let ja = Client.jitter_retry_after a hint in
    let jb = Client.jitter_retry_after b hint in
    Alcotest.(check bool) "within [0.75x, 1.25x)" true
      (ja >= 0.75 *. hint && ja < 1.25 *. hint && jb >= 0.75 *. hint
     && jb < 1.25 *. hint);
    if ja <> jb then distinct := true
  done;
  Alcotest.(check bool) "two clients desynchronize" true !distinct


(* ---- snapshots, clones and multi-file transactions over the wire ---- *)

let test_remote_snapshot_and_clone () =
  let _, _, server, net = mk () in
  let c = mk_client server net 61L in
  Client.write_file c "/f" (Bytes.of_string "epoch one");
  let h = Client.c_snapshot c in
  Client.c_clone c ~src:"/f" ~dst:"/f.clone";
  Client.write_file c "/f" (Bytes.of_string "epoch two");
  Alcotest.(check string) "clone froze the source's committed state" "epoch one"
    (Bytes.to_string (Client.read_whole_file c "/f.clone"));
  Alcotest.(check string) "snapshot horizon reads the old bytes" "epoch one"
    (Bytes.to_string (Client.read_whole_file c ~timestamp:h "/f"));
  Alcotest.(check string) "the present moved on" "epoch two"
    (Bytes.to_string (Client.read_whole_file c "/f"))

let test_write_many_atomic () =
  let _, _, server, net = mk () in
  let c = mk_client server net 62L in
  Client.write_many c
    [ ("/a", Bytes.of_string "one"); ("/b", Bytes.of_string "two") ];
  Alcotest.(check bool) "not left in a transaction" false (Client.in_txn c);
  Alcotest.(check string) "first landed" "one"
    (Bytes.to_string (Client.read_whole_file c "/a"));
  Alcotest.(check string) "second landed" "two"
    (Bytes.to_string (Client.read_whole_file c "/b"));
  (* an exception mid-group aborts the whole transaction: no partial state *)
  (match
     Client.with_txn c (fun c ->
         Client.write_file c "/c" (Bytes.of_string "doomed");
         failwith "boom")
   with
  | () -> Alcotest.fail "expected the injected failure"
  | exception Failure _ -> ());
  Alcotest.(check bool) "transaction closed after the failure" false (Client.in_txn c);
  Alcotest.(check bool) "nothing from the aborted group" false (Client.c_exists c "/c")

let test_remote_vacuum_step_rpc () =
  let clock, fs, server, net = mk () in
  let c = mk_client server net 63L in
  Client.write_file c "/f" (Bytes.of_string "v1");
  Client.write_file c "/f" (Bytes.of_string "v2");
  Simclock.Clock.advance clock 1.;
  (* explicit increments over the wire eventually wrap the heaps *)
  let scanned = ref 0 in
  for _ = 1 to 16 do
    scanned := !scanned + Client.c_vacuum_step c ()
  done;
  Alcotest.(check bool) "the RPC increments scanned versions" true (!scanned > 0);
  Alcotest.(check string) "current contents untouched" "v2"
    (Bytes.to_string (Client.read_whole_file c "/f"));
  let r = Invfs.Fsck.audit fs in
  Alcotest.(check bool) "audit clean after wire-driven vacuum" true (Invfs.Fsck.is_clean r)

let test_background_vacuum_timer () =
  let clock, _, server, net = mk ~vacuum_every_s:5. () in
  let c = mk_client server net 64L in
  Client.write_file c "/f" (Bytes.of_string "v1");
  Client.write_file c "/f" (Bytes.of_string "v2");
  Alcotest.(check int) "timer has not fired yet" 0 (Server.vacuum_steps server);
  (* idle pumps across the timer period run budgeted increments without
     any client asking for them *)
  for _ = 1 to 8 do
    Simclock.Clock.advance clock 6.;
    Server.pump server
  done;
  Alcotest.(check bool) "background increments ran" true (Server.vacuum_steps server > 0);
  Alcotest.(check string) "foreground state untouched" "v2"
    (Bytes.to_string (Client.read_whole_file c "/f"))

let () =
  Alcotest.run "remote"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip + fragmentation" `Quick test_wire_roundtrip;
          Alcotest.test_case "crc rejects corruption" `Quick test_wire_crc_rejects_corruption;
          Alcotest.test_case "empty payload" `Quick test_wire_empty_payload;
          Alcotest.test_case "payload at fragment boundary" `Quick
            test_wire_boundary_payload;
          Alcotest.test_case "maximum-size frame roundtrip" `Quick
            test_wire_max_frame_roundtrip;
          Alcotest.test_case "duplicate fragments ignored" `Quick
            test_wire_duplicate_fragments;
          Alcotest.test_case "unknown opcode answers Unsupported" `Quick
            test_unknown_opcode_unsupported;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "basic session" `Quick test_basic_session;
          Alcotest.test_case "duplicate write applied once" `Quick
            test_duplicate_write_applied_once;
          Alcotest.test_case "lost commit reply replayed" `Quick
            test_lost_commit_reply_retries_replay;
          Alcotest.test_case "corrupt frame retried" `Quick test_corrupt_frame_retried;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "mid-txn death is a clean abort" `Quick
            test_session_death_mid_txn_clean_abort;
          Alcotest.test_case "server crash mid-request" `Quick
            test_server_crash_mid_request;
          Alcotest.test_case "lease expiry frees locks" `Quick
            test_lease_expiry_frees_locks;
          Alcotest.test_case "transparent reissue of reads" `Quick
            test_transparent_reissue_after_crash;
          Alcotest.test_case "crash_server admin op" `Quick test_crash_server_op;
        ] );
      ( "overload",
        [
          Alcotest.test_case "queue bound sheds, re-offer admitted" `Quick
            test_overload_shed_and_reoffer;
          Alcotest.test_case "watermark sheds retransmissions first" `Quick
            test_watermark_sheds_retries_first;
          Alcotest.test_case "expired deadline refused and recorded" `Quick
            test_deadline_reject_recorded;
          Alcotest.test_case "deadline expiring in the queue" `Quick
            test_deadline_expires_in_queue;
          Alcotest.test_case "client retry budget exhausts to EBUSY" `Quick
            test_retry_budget_exhaustion;
          Alcotest.test_case "client deadline fails fast off the wire" `Quick
            test_client_deadline_failfast;
          Alcotest.test_case "overload machinery is deterministic" `Quick
            test_overload_determinism;
          Alcotest.test_case "jittered retry-after desynchronizes" `Quick
            test_retry_after_jitter_desyncs;
        ] );
      ( "parking",
        [
          Alcotest.test_case "lock-wait timeout expires a parked request" `Quick
            test_park_timeout_expires;
          Alcotest.test_case "parked deadlock victim aborts cleanly" `Quick
            test_parked_deadlock_victim;
        ] );
      ( "snapshots and clones",
        [
          Alcotest.test_case "snapshot + clone over the wire" `Quick
            test_remote_snapshot_and_clone;
          Alcotest.test_case "write_many is atomic" `Quick test_write_many_atomic;
          Alcotest.test_case "vacuum step RPC" `Quick test_remote_vacuum_step_rpc;
          Alcotest.test_case "background vacuum timer" `Quick
            test_background_vacuum_timer;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "commit replies ride the batch force" `Quick
            test_group_commit_defers_replies;
        ] );
    ]
