(** Seeded fault injection over the simulated storage stack.

    A fault {e plan} counts block transfers per I/O stream — device reads,
    device writes, and buffer-cache write-backs — and fires scheduled
    faults when a stream's counter reaches a scheduled point.  Faults are
    expressed in transfer counts rather than wall-clock time so that a
    plan driven by a {!Simclock.Rng} seed replays bit-identically.

    The fault taxonomy (see DESIGN.md, "Crash recovery & fault
    injection"):

    - {!Torn}[ n] — a torn page: the first [n] bytes of the transfer land,
      the rest do not.  On writes the durable tail keeps the old image; on
      reads the tail comes back zeroed (the medium is untouched).
    - {!Io_error} — the transfer fails with {!Pagestore.Device.Io_fault};
      transient, a retry succeeds.
    - {!Crash} — the machine dies before the transfer lands:
      {!Pagestore.Device.Crash_injected} propagates to the harness, which
      then runs whole-system recovery.

    and the permanent media faults (DESIGN.md, "Media failure & degraded
    mode"):

    - {!Bitrot} — silent decay: a few stored bytes flip without the
      recorded checksum being updated.  The transfer succeeds; detection
      is the checksum-verified read path's job.
    - {!Stuck} — the targeted block goes permanently bad; this and every
      later transfer on it raises {!Pagestore.Device.Media_failure}.
    - {!Device_dead} — the whole device stops answering, permanently.

    Plans are armed by installing hooks into {!Pagestore.Device} and
    {!Pagestore.Bufcache}; {!disarm} removes them.  One plan may cover
    many devices (use {!arm_switch}); the per-stream counters are global
    to the plan, not per-device. *)

type io = Read | Write | Writeback

type action = Torn of int | Io_error | Crash | Bitrot | Stuck | Device_dead

type event = {
  seq : int;  (** value of the stream counter when the fault fired *)
  io : io;
  device : string;
  segid : int;
  blkno : int;
  action : action;
}

type t

val create : unit -> t

val arm_device : t -> Pagestore.Device.t -> unit
(** Install this plan's fault hook on a device (idempotent). *)

val arm_switch : t -> Pagestore.Switch.t -> unit
(** {!arm_device} for every device behind the switch. *)

val arm_cache : t -> Pagestore.Bufcache.t -> unit
(** Install the plan's write-back hook so faults can fire at
    dirty-page-flush granularity ([io = Writeback]). *)

val disarm : t -> unit
(** Remove all hooks installed by this plan.  Scheduled-but-unfired
    faults stay scheduled (use {!clear_schedule} to drop them). *)

val schedule : t -> io:io -> after:int -> action -> unit
(** [schedule t ~io ~after action] fires [action] on the [after]-th next
    transfer of stream [io] (so [after:1] hits the very next one).
    Raises [Invalid_argument] — naming the offending argument, action and
    stream — if [after < 1], or for the media-level actions ([Torn],
    [Bitrot], [Stuck], [Device_dead]) on the [Writeback] stream: those act
    on the medium, so they belong on device-transfer streams. *)

val schedule_random : t -> Simclock.Rng.t -> io:io -> within:int -> action -> unit
(** Schedule [action] on a uniformly random transfer among the next
    [within] on stream [io]. *)

val schedule_random_crash : t -> Simclock.Rng.t -> within:int -> unit
(** Schedule a {!Crash} on a uniformly random device write among the next
    [within] writes. *)

val clear_schedule : t -> unit
(** Drop every scheduled-but-unfired fault (counters and the event log
    are kept).  Recovery code paths run under a cleared schedule. *)

val pending : t -> int
(** Scheduled faults that have not fired yet. *)

val pending_media : t -> int
(** Scheduled-but-unfired faults that damage the medium ({!Torn},
    {!Bitrot}, {!Stuck}, {!Device_dead}).  Harnesses that must never
    damage both copies of a mirrored block keep at most one such fault
    in flight. *)

val events : t -> event list
(** Every fault that fired, oldest first. *)

val event_to_string : event -> string
val io_to_string : io -> string
val action_to_string : action -> string

val reads_seen : t -> int
val writes_seen : t -> int
val writebacks_seen : t -> int
(** Stream counters: transfers observed since the plan was created. *)
