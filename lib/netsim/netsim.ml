type params = {
  bandwidth_bps : float;
  latency_s : float;
  mss : int;
  per_segment_cpu_s : float;
  per_call_cpu_s : float;
}

let tcp_1993 =
  {
    bandwidth_bps = 10e6;
    latency_s = 0.0008;
    mss = 1460;
    per_segment_cpu_s = 0.0028;
    per_call_cpu_s = 0.004;
  }

let udp_rpc_1993 =
  {
    bandwidth_bps = 10e6;
    latency_s = 0.0008;
    mss = 1460;
    per_segment_cpu_s = 0.00045;
    per_call_cpu_s = 0.0012;
  }

type t = {
  clock : Simclock.Clock.t;
  p : params;
  mutable messages : int;
  mutable bytes_sent : int;
  mutable retries : int;
  mutable timeouts : int;
}

type net = t

let create ~clock p =
  { clock; p; messages = 0; bytes_sent = 0; retries = 0; timeouts = 0 }

let clock t = t.clock
let params t = t.p
let messages t = t.messages
let bytes_sent t = t.bytes_sent
let retries t = t.retries
let timeouts t = t.timeouts
let note_retry t = t.retries <- t.retries + 1
let note_timeout t = t.timeouts <- t.timeouts + 1

let cost_of_send t ~bytes =
  if bytes < 0 then invalid_arg "Netsim: negative size";
  let segments = max 1 ((bytes + t.p.mss - 1) / t.p.mss) in
  t.p.per_call_cpu_s
  +. (float_of_int segments *. t.p.per_segment_cpu_s)
  +. (float_of_int (bytes * 8) /. t.p.bandwidth_bps)
  +. t.p.latency_s

let send t ~bytes =
  Simclock.Clock.advance t.clock ~account:"net" (cost_of_send t ~bytes);
  t.messages <- t.messages + 1;
  t.bytes_sent <- t.bytes_sent + bytes

let call t ~request ~reply =
  send t ~bytes:request;
  send t ~bytes:reply

(* ---------------- Link: an actual (simulated) connection ---------------- *)

module Link = struct
  type dir = To_server | To_client

  let dir_to_string = function
    | To_server -> "to_server"
    | To_client -> "to_client"

  type fault =
    | Drop
    | Duplicate
    | Reorder
    | Corrupt
    | Partition of int
    | Server_crash

  let fault_to_string = function
    | Drop -> "drop"
    | Duplicate -> "duplicate"
    | Reorder -> "reorder"
    | Corrupt -> "corrupt"
    | Partition n -> Printf.sprintf "partition:%d" n
    | Server_crash -> "server_crash"

  type entry = { frame : string; poison : bool }

  type endpoint = {
    q : entry Queue.t;
    mutable limbo : entry list; (* held back; released after the next send *)
    mutable partition_left : int; (* messages still to swallow in this dir *)
  }

  let endpoint_create () = { q = Queue.create (); limbo = []; partition_left = 0 }

  type t = {
    net : net;
    to_server : endpoint;
    to_client : endpoint;
    mutable hook : (dir -> bytes:int -> fault option) option;
    mutable dropped : int;
    mutable duplicated : int;
    mutable reordered : int;
    mutable corrupted : int;
    mutable partitioned : int;
    mutable crash_marks : int;
    mutable peak_depth : int; (* high-water mark of either direction's queue *)
  }

  let create net =
    {
      net;
      to_server = endpoint_create ();
      to_client = endpoint_create ();
      hook = None;
      dropped = 0;
      duplicated = 0;
      reordered = 0;
      corrupted = 0;
      partitioned = 0;
      crash_marks = 0;
      peak_depth = 0;
    }

  let net t = t.net
  let set_fault_hook t h = t.hook <- h
  let endpoint t = function To_server -> t.to_server | To_client -> t.to_client

  (* Flip a few payload bytes so the frame survives parsing attempts but
     fails its CRC at the receiver. *)
  let mangle frame =
    let b = Bytes.of_string frame in
    let n = Bytes.length b in
    let flip i =
      if i < n then Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5f))
    in
    flip (n / 2);
    flip (n - 1);
    Bytes.to_string b

  let send ?(charge = true) t dir frame =
    let bytes = String.length frame in
    if charge then
      Simclock.Clock.advance t.net.clock ~account:"net" (cost_of_send t.net ~bytes);
    t.net.messages <- t.net.messages + 1;
    t.net.bytes_sent <- t.net.bytes_sent + bytes;
    let ep = endpoint t dir in
    (* Anything held back by an earlier Duplicate/Reorder is released behind
       this message: the hold-back is what makes the copy arrive late. *)
    let release = ep.limbo in
    ep.limbo <- [];
    let fault = match t.hook with Some h -> h dir ~bytes | None -> None in
    (match fault with
    | Some (Partition n) ->
      t.partitioned <- t.partitioned + 1;
      ep.partition_left <- max 0 (n - 1)
    | _ when ep.partition_left > 0 ->
      ep.partition_left <- ep.partition_left - 1;
      t.partitioned <- t.partitioned + 1
    | Some Drop -> t.dropped <- t.dropped + 1
    | Some Duplicate ->
      Queue.add { frame; poison = false } ep.q;
      ep.limbo <- [ { frame; poison = false } ];
      t.duplicated <- t.duplicated + 1
    | Some Reorder ->
      ep.limbo <- [ { frame; poison = false } ];
      t.reordered <- t.reordered + 1
    | Some Corrupt ->
      Queue.add { frame = mangle frame; poison = false } ep.q;
      t.corrupted <- t.corrupted + 1
    | Some Server_crash ->
      Queue.add { frame; poison = true } ep.q;
      t.crash_marks <- t.crash_marks + 1
    | None -> Queue.add { frame; poison = false } ep.q);
    List.iter (fun e -> Queue.add e ep.q) release;
    t.peak_depth <- max t.peak_depth (Queue.length ep.q)

  let recv t dir =
    let ep = endpoint t dir in
    if Queue.is_empty ep.q then None
    else
      let e = Queue.pop ep.q in
      Some (e.frame, e.poison)

  let pending t dir = Queue.length (endpoint t dir).q

  let clear t =
    let wipe ep =
      Queue.clear ep.q;
      ep.limbo <- [];
      ep.partition_left <- 0
    in
    wipe t.to_server;
    wipe t.to_client

  let peak_depth t = t.peak_depth
  let reset_peak_depth t = t.peak_depth <- 0
  let dropped t = t.dropped
  let duplicated t = t.duplicated
  let reordered t = t.reordered
  let corrupted t = t.corrupted
  let partitioned t = t.partitioned
  let crash_marks t = t.crash_marks

  let faults_injected t =
    t.dropped + t.duplicated + t.reordered + t.corrupted + t.partitioned
    + t.crash_marks
end
