type manager = {
  clock : Simclock.Clock.t;
  log : Status_log.t;
  locks : Lock_mgr.t;
  cache : Pagestore.Bufcache.t;
}

type state = Active | Committed | Aborted

type t = {
  mgr : manager;
  txn_xid : Xid.t;
  started : int64;
  mutable txn_state : state;
}

let create_manager ~clock ~log ~locks ~cache = { clock; log; locks; cache }

let clock m = m.clock
let log m = m.log
let locks m = m.locks
let cache m = m.cache

let m_begin = Obs.Metrics.counter "txn.begin"
let m_commit = Obs.Metrics.counter "txn.commit"
let m_abort = Obs.Metrics.counter "txn.abort"
let h_commit = Obs.Metrics.histogram "txn.commit.latency_us"

let begin_txn mgr =
  let txn_xid = Status_log.begin_txn mgr.log in
  Obs.Metrics.incr m_begin;
  (* Unscoped span: the transaction outlives this call, so the matching
     span_end lives in [commit] / [abort]. *)
  if Obs.on Obs.Txn then Obs.span_begin Obs.Txn "txn" ~args:[ ("xid", Obs.I txn_xid) ] ();
  { mgr; txn_xid; started = Simclock.Clock.timestamp mgr.clock; txn_state = Active }

let xid t = t.txn_xid
let state t = t.txn_state
let start_time t = t.started
let manager t = t.mgr
let snapshot t = Snapshot.Current t.txn_xid

let require_active t op =
  if t.txn_state <> Active then
    invalid_arg (Printf.sprintf "Txn.%s: xid %d is not active" op t.txn_xid)

let lock t ~resource mode =
  require_active t "lock";
  Lock_mgr.acquire t.mgr.locks t.txn_xid ~resource mode

let commit t =
  require_active t "commit";
  let t0 = Simclock.Clock.now t.mgr.clock in
  (* A transaction that held no exclusive lock wrote nothing: its commit
     needs neither a data flush nor a forced status write. *)
  let wrote =
    List.exists
      (fun (_, mode) -> mode = Lock_mgr.Exclusive)
      (Lock_mgr.held_by t.mgr.locks t.txn_xid)
  in
  (* Data before status: a half-done flush without the status entry is a
     transaction that never happened. *)
  if wrote then begin
    Cpu_model.charge_txn_overhead t.mgr.clock;
    Pagestore.Bufcache.flush t.mgr.cache
  end;
  let ts = Status_log.commit ~force:wrote t.mgr.log t.txn_xid in
  Lock_mgr.release_all t.mgr.locks t.txn_xid;
  t.txn_state <- Committed;
  (* Counter and histogram move in lockstep unconditionally — the bench
     smoke check asserts hist_count(txn.commit.latency_us) = txn.commit. *)
  Obs.Metrics.incr m_commit;
  Obs.Metrics.observe h_commit (Simclock.Clock.now t.mgr.clock -. t0);
  (* The commit point is the last event inside the span: everything the
     transaction did (including lock release, which is traceless) happens
     before it, and the span closes right after. *)
  if Obs.on Obs.Txn then begin
    Obs.event Obs.Txn "txn.commit"
      ~args:[ ("xid", Obs.I t.txn_xid); ("wrote", Obs.I (if wrote then 1 else 0)) ]
      ();
    Obs.span_end Obs.Txn "txn" ()
  end;
  ts

let abort t =
  match t.txn_state with
  | Aborted -> ()
  | Committed -> invalid_arg "Txn.abort: already committed"
  | Active ->
    Status_log.abort t.mgr.log t.txn_xid;
    Lock_mgr.release_all t.mgr.locks t.txn_xid;
    t.txn_state <- Aborted;
    Obs.Metrics.incr m_abort;
    if Obs.on Obs.Txn then begin
      Obs.event Obs.Txn "txn.abort" ~args:[ ("xid", Obs.I t.txn_xid) ] ();
      Obs.span_end Obs.Txn "txn" ()
    end

let with_txn mgr f =
  let t = begin_txn mgr in
  match f t with
  | v ->
    if t.txn_state = Active then ignore (commit t : int64);
    v
  | exception e ->
    if t.txn_state = Active then abort t;
    raise e
