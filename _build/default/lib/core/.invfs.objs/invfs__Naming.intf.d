lib/core/naming.mli: Relstore
