(** File-system error codes, UNIX-flavoured like the paper's client
    library. *)

type code =
  | ENOENT  (** no such file or directory *)
  | EEXIST  (** file exists *)
  | EISDIR  (** is a directory *)
  | ENOTDIR  (** a path component is not a directory *)
  | ENOTEMPTY  (** directory not empty *)
  | EBADF  (** bad file descriptor *)
  | EINVAL  (** invalid argument *)
  | EROFS  (** write to a historical (time-travel) open *)
  | ETXN  (** transaction misuse, e.g. nested p_begin *)
  | EDEADLK  (** deadlock detected; transaction aborted *)
  | EAGAIN  (** lock conflict; retry after the holder commits *)
  | EIO
      (** permanent media failure: dead device, stuck block, or
          unrepairable corruption with no mirror copy *)
  | ETIMEDOUT
      (** lock-wait timeout: bounded retry-with-backoff exhausted while
          the named holders kept the lock *)
  | ECONNRESET
      (** (remote client) the session to the server was lost and could
          not be recovered; an in-flight transaction is cleanly aborted *)
  | EBUSY
      (** (remote client) the server shed the request under overload and
          the retry budget ran out before it was admitted; the request
          definitively did not execute *)
  | ENOTSUP
      (** the server does not implement the requested operation (wire
          version skew: a newer client spoke to an older server) *)
  | ESTALE
      (** (remote client) the contacted shard refused the request because
          the client's cached placement epoch is stale or the shard no
          longer owns the chunk range; refresh the placement map from the
          coordinator and retry *)

exception Fs_error of code * string

val code_to_string : code -> string
val fail : code -> ('a, unit, string, 'b) format4 -> 'a
(** [fail code fmt ...] raises {!Fs_error}. *)
