lib/index/key.ml: Array Bytes Char Int32 Int64 Lazy String
