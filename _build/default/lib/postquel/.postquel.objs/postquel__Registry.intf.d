lib/postquel/registry.mli: Value
