examples/satellite_images.ml: Bytes Char Int64 Invfs List Postquel Printf Relstore Simclock String
