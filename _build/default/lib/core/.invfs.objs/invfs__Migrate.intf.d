lib/core/migrate.mli: Fs Postquel
