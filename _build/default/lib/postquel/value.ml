type t =
  | Int of int64
  | Float of float
  | Str of string
  | Bool of bool
  | List of t list
  | Null

let rec to_string = function
  | Int i -> Int64.to_string i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "%S" s
  | Bool b -> string_of_bool b
  | List vs -> "{" ^ String.concat ", " (List.map to_string vs) ^ "}"
  | Null -> "null"

let as_float = function Int i -> Some (Int64.to_float i) | Float f -> Some f | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, _ | _, Null -> false
  | Int x, Int y -> Int64.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | List x, List y -> (
    try List.for_all2 equal x y with Invalid_argument _ -> false)
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (as_float a, as_float b) with
    | Some x, Some y -> Float.equal x y
    | _ -> false)
  | _ -> false

let compare_values a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Str x, Str y -> Some (String.compare x y)
  | Bool x, Bool y -> Some (Bool.compare x y)
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (as_float a, as_float b) with
    | Some x, Some y -> Some (Float.compare x y)
    | _ -> None)
  | _ -> None

let truthy = function Bool b -> b | _ -> false

let member x xs =
  match (x, xs) with
  | _, List vs -> List.exists (equal x) vs
  | Str needle, Str hay ->
    let nl = String.length needle and hl = String.length hay in
    nl = 0
    ||
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  | _ -> false

let arith fi ff a b =
  match (a, b) with
  | Int x, Int y -> fi x y
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (as_float a, as_float b) with
    | Some x, Some y -> ff x y
    | _ -> Null)
  | _ -> Null

let add = arith (fun x y -> Int (Int64.add x y)) (fun x y -> Float (x +. y))
let sub = arith (fun x y -> Int (Int64.sub x y)) (fun x y -> Float (x -. y))
let mul = arith (fun x y -> Int (Int64.mul x y)) (fun x y -> Float (x *. y))

let div =
  arith
    (fun x y ->
      if Int64.equal y 0L then Null
      else if Int64.equal (Int64.rem x y) 0L then Int (Int64.div x y)
      else Float (Int64.to_float x /. Int64.to_float y))
    (fun x y -> if Float.equal y 0. then Null else Float (x /. y))
