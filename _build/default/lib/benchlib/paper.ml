type row = { inv_cs : float; nfs : float; inv_sp : float }

let table3 = function
  | Workload.Create_file -> { inv_cs = 141.5; nfs = 50.6; inv_sp = 111.6 }
  | Workload.Read_1mb_single -> { inv_cs = 3.4; nfs = 2.8; inv_sp = 0.4 }
  | Workload.Read_1mb_seq -> { inv_cs = 4.8; nfs = 2.2; inv_sp = 0.4 }
  | Workload.Read_1mb_rand -> { inv_cs = 5.5; nfs = 2.4; inv_sp = 0.8 }
  | Workload.Write_1mb_single -> { inv_cs = 4.6; nfs = 2.0; inv_sp = 1.4 }
  | Workload.Write_1mb_seq -> { inv_cs = 5.6; nfs = 1.7; inv_sp = 1.4 }
  | Workload.Write_1mb_rand -> { inv_cs = 6.0; nfs = 1.7; inv_sp = 2.9 }
  | Workload.Read_byte -> { inv_cs = 0.02; nfs = 0.01; inv_sp = 0.01 }
  | Workload.Write_byte -> { inv_cs = 0.03; nfs = 0.02; inv_sp = 0.02 }

let figure_ops = function
  | `Fig3 -> [ Workload.Create_file ]
  | `Fig4 -> [ Workload.Read_byte; Workload.Write_byte ]
  | `Fig5 ->
    [ Workload.Read_1mb_single; Workload.Read_1mb_seq; Workload.Read_1mb_rand ]
  | `Fig6 ->
    [ Workload.Write_1mb_single; Workload.Write_1mb_seq; Workload.Write_1mb_rand ]

let figure_title = function
  | `Fig3 -> "Figure 3: 25MByte file creation times"
  | `Fig4 -> "Figure 4: Random byte access"
  | `Fig5 -> "Figure 5: Read throughput"
  | `Fig6 -> "Figure 6: Write throughput"
