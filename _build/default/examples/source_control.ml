(* Source control on a file system: the paper's motivating scenario.

   Run with:  dune exec examples/source_control.exe

   "Programmers working on a large software project may need to be able
   to check in several fixed source code files at the same time.  If the
   system crashes when some, but not all, of the files have been checked
   in, then the software project's master directory will be in an
   inconsistent state."

   With Inversion, check-ins are transactions and every committed state
   remains reachable, so the file system itself is "a superset of the
   services offered by revision control programs like rcs(1)" — no
   ,v files, no rcs commands, just time travel. *)

module Fs = Invfs.Fs

let say fmt = Printf.printf (fmt ^^ "\n")
let bytes_of = Bytes.of_string
let str = Bytes.to_string

type checkin = { tag : string; when_ : int64 }

let () =
  let clock = Simclock.Clock.create () in
  let db = Relstore.Db.create ~clock () in
  let fs = Fs.make db () in
  let s = Fs.new_session fs in
  Fs.mkdir s "/project";
  Fs.mkdir s "/project/src";

  (* Each check-in is one transaction over many files; we remember the
     commit instant as the "revision". *)
  let history = ref [] in
  let checkin tag files =
    Fs.with_transaction s (fun () ->
        List.iter (fun (path, contents) -> Fs.write_file s path (bytes_of contents)) files);
    Simclock.Clock.advance clock 60.;
    history := { tag; when_ = Relstore.Db.now db } :: !history;
    Simclock.Clock.advance clock 3540.;
    say "checked in %-8s (%d files)" tag (List.length files)
  in

  checkin "r1"
    [
      ("/project/src/parser.c", "parse() { /* v1 */ }");
      ("/project/src/parser.h", "/* api v1 */");
      ("/project/Makefile", "all: parser.o");
    ];
  checkin "r2"
    [
      ("/project/src/parser.c", "parse() { /* v2: new AST */ }");
      ("/project/src/parser.h", "/* api v2: ast nodes */");
    ];
  checkin "r3"
    [
      ("/project/src/parser.c", "parse() { /* v3: oops, broke the build */ }");
      ("/project/src/codegen.c", "codegen() { /* needs api v3?? */ }");
    ];

  say "";
  say "== A failed check-in leaves no trace ==";
  (try
     Fs.with_transaction s (fun () ->
         Fs.write_file s "/project/src/parser.c" (bytes_of "half done");
         failwith "editor crashed mid-checkin")
   with Failure _ -> say "check-in aborted (editor crashed)");
  say "parser.c is still r3: %S" (str (Fs.read_whole_file s "/project/src/parser.c"));

  say "";
  say "== Browsing history: every revision is a timestamp ==";
  let revisions = List.rev !history in
  let show_rev { tag; when_ } =
    let files = Fs.readdir s ~timestamp:when_ "/project/src" in
    say "  %s (t=%Ldus): src/ = [%s]  parser.c = %S" tag when_
      (String.concat "; " files)
      (str (Fs.read_whole_file s ~timestamp:when_ "/project/src/parser.c"))
  in
  List.iter show_rev revisions;

  say "";
  say "== Reverting the broken build: copy r2 forward ==";
  let r2 = List.find (fun r -> r.tag = "r2") revisions in
  Fs.with_transaction s (fun () ->
      List.iter
        (fun file ->
          let path = "/project/src/" ^ file in
          if Fs.exists s ~timestamp:r2.when_ path then
            Fs.write_file s path (Fs.read_whole_file s ~timestamp:r2.when_ path))
        (Fs.readdir s "/project/src"));
  say "parser.c after revert: %S" (str (Fs.read_whole_file s "/project/src/parser.c"));
  say "(and r3 itself is still in history, nothing was destroyed)";

  say "";
  say "== Old versions survive even vacuuming, via the archive ==";
  let oid = Fs.lookup_oid s "/project/src/parser.c" in
  let stats = Fs.vacuum_file fs ~oid ~mode:`Archive () in
  say "vacuumed parser.c: %d versions archived, %d discarded" stats.Relstore.Vacuum.archived
    stats.Relstore.Vacuum.discarded;
  let r1 = List.find (fun r -> r.tag = "r1") revisions in
  say "r1 parser.c read from the archive: %S"
    (str (Fs.read_whole_file s ~timestamp:r1.when_ "/project/src/parser.c"));
  say "";
  say "done."
