(** Network cost models: 10 Mbit/s Ethernet, TCP streams, UDP RPC.

    The paper's client/server experiments run over "TCP/IP over a
    10Mbit/sec Ethernet" between a DECstation 3100 and a DECsystem 5900,
    and conclude that "the client/server communication protocol used by
    the file system is much too heavy-weight": remote access adds 3–5
    seconds per 1 MB operation versus the single-process configuration.
    NFS uses lighter-weight UDP RPC.

    We model both as per-message CPU costs plus wire time:
    - every message pays per-segment protocol processing (TCP's is the
      heavy one — checksums, copies, small windows on a ~13 MIPS CPU),
    - bytes move at the Ethernet's bandwidth,
    - each direction pays propagation+interrupt latency.

    All time goes to the shared clock under ["net.*"] accounts. *)

type params = {
  bandwidth_bps : float;  (** wire speed; 10 Mbit/s *)
  latency_s : float;  (** one-way latency incl. interrupt handling *)
  mss : int;  (** bytes per segment on the wire *)
  per_segment_cpu_s : float;  (** protocol processing per segment *)
  per_call_cpu_s : float;  (** marshalling etc. per request/response *)
}

val tcp_1993 : params
(** Heavy-weight TCP/IP path of the Inversion client library. *)

val udp_rpc_1993 : params
(** Sun RPC / UDP as used by NFS. *)

type t

val create : clock:Simclock.Clock.t -> params -> t
val clock : t -> Simclock.Clock.t
val params : t -> params

val send : t -> bytes:int -> unit
(** One-way message of [bytes] payload: per-call CPU, segmentation,
    per-segment CPU, wire time, latency. *)

val call : t -> request:int -> reply:int -> unit
(** A round trip: request out, reply back. *)

val cost_of_send : t -> bytes:int -> float
(** What {!send} would charge, without charging it.  Pipelined-transfer
    models (windowed writes overlapping server work) use this to charge
    only the non-overlapped remainder. *)

val messages : t -> int
(** Lifetime message count (both directions). *)

val bytes_sent : t -> int
