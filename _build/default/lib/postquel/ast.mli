(** Abstract syntax for the POSTQUEL-flavoured language.

    Enough of POSTQUEL to express every query in the paper verbatim:

    {v
    retrieve (filename) where "RISC" in keywords(file)
    retrieve (snow(file), filename)
      where filetype(file) = "tm" and snow(file)/size(file) > 0.5
        and month_of(file) = "April"
    retrieve (filename) where owner(file) = "mao"
      and (filetype(file) = "movie" or filetype(file) = "sound")
      and dir(file) = "/users/mao"
    v}

    plus [define type NAME] for declaring file types (functions are
    registered from OCaml through {!Registry}). *)

type binop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | In  (** membership / substring *)

type expr =
  | Const of Value.t
  | Var of string  (** a per-row binding such as [file] or [filename] *)
  | Call of string * expr list  (** registered function application *)
  | Binop of binop * expr * expr
  | Not of expr

type statement =
  | Retrieve of { targets : expr list; where : expr option }
  | Define_type of string

val binop_to_string : binop -> string
val expr_to_string : expr -> string
val statement_to_string : statement -> string
