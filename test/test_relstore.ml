(* The no-overwrite storage manager: pages, heaps, MVCC visibility,
   transactions, locking, vacuum, crash recovery. *)

module P = Pagestore.Page
module HP = Relstore.Heap_page
module H = Relstore.Heap
module T = Relstore.Txn
module SL = Relstore.Status_log
module LM = Relstore.Lock_mgr
module Db = Relstore.Db

let payload s = Bytes.of_string s
let str b = Bytes.to_string b

let fresh_db () = Db.create ()

(* ---- Heap_page ---- *)

let test_page_insert_read () =
  let p = P.create () in
  HP.init p ~relid:7L ~blkno:3;
  let slot = Option.get (HP.insert p ~oid:100L ~xmin:1 ~payload:(payload "hello")) in
  (match HP.read_record p ~slot with
  | Some r ->
    Alcotest.(check int64) "oid" 100L r.oid;
    Alcotest.(check int) "xmin" 1 r.xmin;
    Alcotest.(check int) "xmax live" 0 r.xmax;
    Alcotest.(check string) "payload" "hello" (str r.payload)
  | None -> Alcotest.fail "record missing");
  Alcotest.(check bool) "dead slot" true (HP.read_record p ~slot:99 = None)

let test_page_fill_until_full () =
  let p = P.create () in
  HP.init p ~relid:1L ~blkno:0;
  let n = ref 0 in
  (try
     while true do
       match HP.insert p ~oid:(Int64.of_int !n) ~xmin:1 ~payload:(payload "0123456789") with
       | Some _ -> incr n
       | None -> raise Exit
     done
   with Exit -> ());
  Alcotest.(check bool) (Printf.sprintf "many records (%d)" !n) true (!n > 200);
  Alcotest.(check int) "nslots" !n (HP.nslots p)

let test_page_max_payload () =
  let p = P.create () in
  HP.init p ~relid:1L ~blkno:0;
  let big = Bytes.make HP.max_payload 'x' in
  (match HP.insert p ~oid:1L ~xmin:1 ~payload:big with
  | Some _ -> ()
  | None -> Alcotest.fail "max payload should fit on empty page");
  Alcotest.check_raises "oversized rejected"
    (Invalid_argument "Heap_page.insert: payload too large") (fun () ->
      ignore (HP.insert p ~oid:2L ~xmin:1 ~payload:(Bytes.make (HP.max_payload + 1) 'x')))

let test_page_compact_preserves_tids () =
  let p = P.create () in
  HP.init p ~relid:1L ~blkno:0;
  let s0 = Option.get (HP.insert p ~oid:1L ~xmin:1 ~payload:(payload "aaa")) in
  let s1 = Option.get (HP.insert p ~oid:2L ~xmin:1 ~payload:(payload "bbb")) in
  let s2 = Option.get (HP.insert p ~oid:3L ~xmin:1 ~payload:(payload "ccc")) in
  HP.kill_slot p ~slot:s1;
  let before = HP.free_space p in
  HP.compact p;
  Alcotest.(check bool) "space reclaimed" true (HP.free_space p > before);
  (match HP.read_record p ~slot:s0 with
  | Some r -> Alcotest.(check string) "s0 intact" "aaa" (str r.payload)
  | None -> Alcotest.fail "s0 lost");
  (match HP.read_record p ~slot:s2 with
  | Some r -> Alcotest.(check string) "s2 intact" "ccc" (str r.payload)
  | None -> Alcotest.fail "s2 lost");
  Alcotest.(check bool) "s1 dead" true (HP.read_record p ~slot:s1 = None)

let test_page_self_identification () =
  let p = P.create () in
  HP.init p ~relid:5L ~blkno:9;
  HP.seal p;
  Alcotest.(check bool) "verifies" true (HP.verify p ~expect_relid:5L ~expect_blkno:9 = Ok ());
  Alcotest.(check bool) "wrong relid" true
    (HP.verify p ~expect_relid:6L ~expect_blkno:9 <> Ok ());
  Alcotest.(check bool) "wrong blkno" true
    (HP.verify p ~expect_relid:5L ~expect_blkno:8 <> Ok ());
  (* corrupt a byte: checksum must catch it *)
  P.set_u8 p 4000 0xFF;
  Alcotest.(check bool) "corruption detected" true
    (HP.verify p ~expect_relid:5L ~expect_blkno:9 <> Ok ())

(* ---- Status log ---- *)

let test_status_lifecycle () =
  let clock = Simclock.Clock.create () in
  let log = SL.create ~clock in
  let x1 = SL.begin_txn log in
  let x2 = SL.begin_txn log in
  Alcotest.(check bool) "distinct xids" true (x1 <> x2);
  Alcotest.(check bool) "in progress" true (SL.state log x1 = SL.In_progress);
  Simclock.Clock.advance clock 1.;
  let ts = SL.commit log x1 in
  Alcotest.(check bool) "committed" true (SL.is_committed log x1);
  Alcotest.(check bool) "commit time recorded" true (SL.commit_time log x1 = Some ts);
  SL.abort log x2;
  Alcotest.(check bool) "aborted" true (SL.state log x2 = SL.Aborted);
  Alcotest.(check bool) "commit aborted fails" true
    (try
       ignore (SL.commit log x2);
       false
     with Invalid_argument _ -> true)

let test_status_crash_recovery () =
  let clock = Simclock.Clock.create () in
  let log = SL.create ~clock in
  let x1 = SL.begin_txn log in
  let x2 = SL.begin_txn log in
  ignore (SL.commit log x1);
  SL.crash_recover log;
  Alcotest.(check bool) "committed survives" true (SL.is_committed log x1);
  Alcotest.(check bool) "in-progress aborted" true (SL.state log x2 = SL.Aborted);
  Alcotest.(check (list int)) "no active" [] (SL.active log)

let test_committed_before () =
  let clock = Simclock.Clock.create () in
  let log = SL.create ~clock in
  let x = SL.begin_txn log in
  Simclock.Clock.advance clock 2.;
  let ts = SL.commit log x in
  Alcotest.(check bool) "before horizon" true (SL.committed_before log x ts);
  Alcotest.(check bool) "not before earlier" false
    (SL.committed_before log x (Int64.sub ts 1L))

(* ---- Lock manager ---- *)

let test_lock_shared_compatible () =
  let lm = LM.create () in
  LM.acquire lm 1 ~resource:"r" LM.Shared;
  LM.acquire lm 2 ~resource:"r" LM.Shared;
  Alcotest.(check int) "two holders" 2 (List.length (LM.holders lm ~resource:"r"))

let test_lock_exclusive_conflicts () =
  let lm = LM.create () in
  LM.acquire lm 1 ~resource:"r" LM.Exclusive;
  Alcotest.(check bool) "reader blocked" true
    (try
       LM.acquire lm 2 ~resource:"r" LM.Shared;
       false
     with LM.Would_block _ -> true);
  LM.release_all lm 1;
  LM.acquire lm 2 ~resource:"r" LM.Shared

let test_lock_upgrade () =
  let lm = LM.create () in
  LM.acquire lm 1 ~resource:"r" LM.Shared;
  LM.acquire lm 1 ~resource:"r" LM.Exclusive;
  (match LM.holders lm ~resource:"r" with
  | [ (1, LM.Exclusive) ] -> ()
  | _ -> Alcotest.fail "expected upgraded exclusive");
  (* upgrade with another reader present must block *)
  let lm2 = LM.create () in
  LM.acquire lm2 1 ~resource:"r" LM.Shared;
  LM.acquire lm2 2 ~resource:"r" LM.Shared;
  Alcotest.(check bool) "upgrade blocked" true
    (try
       LM.acquire lm2 1 ~resource:"r" LM.Exclusive;
       false
     with LM.Would_block _ -> true)

let test_lock_deadlock_detected () =
  let lm = LM.create () in
  LM.acquire lm 1 ~resource:"a" LM.Exclusive;
  LM.acquire lm 2 ~resource:"b" LM.Exclusive;
  (* 1 waits for b *)
  (try LM.acquire lm 1 ~resource:"b" LM.Exclusive with LM.Would_block _ -> ());
  (* 2 requesting a closes the cycle *)
  Alcotest.(check bool) "deadlock raised" true
    (try
       LM.acquire lm 2 ~resource:"a" LM.Exclusive;
       false
     with LM.Deadlock _ -> true)

let test_lock_release_unblocks () =
  let lm = LM.create () in
  LM.acquire lm 1 ~resource:"r" LM.Exclusive;
  Alcotest.(check bool) "blocked" false (LM.try_acquire lm 2 ~resource:"r" LM.Exclusive);
  Alcotest.(check (list int)) "wait edge" [ 1 ] (LM.waiting lm 2);
  LM.release_all lm 1;
  Alcotest.(check (list int)) "edge cleared" [] (LM.waiting lm 2);
  Alcotest.(check bool) "granted" true (LM.try_acquire lm 2 ~resource:"r" LM.Exclusive)

(* ---- Heap + transactions + MVCC ---- *)

let test_heap_insert_fetch () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid =
    Db.with_txn db (fun txn -> H.insert heap txn ~oid:(Db.allocate_oid db) (payload "v1"))
  in
  let txn = Db.begin_txn db in
  (match H.fetch heap (T.snapshot txn) tid with
  | Some r -> Alcotest.(check string) "visible after commit" "v1" (str r.payload)
  | None -> Alcotest.fail "record invisible");
  T.abort txn

let test_heap_own_changes_visible () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  Db.with_txn db (fun txn ->
      let tid = H.insert heap txn ~oid:1L (payload "mine") in
      match H.fetch heap (T.snapshot txn) tid with
      | Some r -> Alcotest.(check string) "own insert visible" "mine" (str r.payload)
      | None -> Alcotest.fail "own insert invisible")

let test_heap_aborted_invisible () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let txn = Db.begin_txn db in
  let tid = H.insert heap txn ~oid:1L (payload "ghost") in
  T.abort txn;
  let reader = Db.begin_txn db in
  Alcotest.(check bool) "aborted invisible" true
    (H.fetch heap (T.snapshot reader) tid = None);
  T.abort reader

let test_heap_delete_and_update () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "old")) in
  let tid2 = Db.with_txn db (fun txn -> H.update heap txn tid (payload "new")) in
  let reader = Db.begin_txn db in
  Alcotest.(check bool) "old version invisible" true
    (H.fetch heap (T.snapshot reader) tid = None);
  (match H.fetch heap (T.snapshot reader) tid2 with
  | Some r ->
    Alcotest.(check string) "new version" "new" (str r.payload);
    Alcotest.(check int64) "same oid" 1L r.oid
  | None -> Alcotest.fail "new version invisible");
  (* the old version still physically exists (no overwrite) *)
  (match H.fetch_any heap tid with
  | Some r -> Alcotest.(check string) "old bytes in place" "old" (str r.payload)
  | None -> Alcotest.fail "old version physically gone");
  T.abort reader

let test_heap_double_delete_rejected () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "x")) in
  Db.with_txn db (fun txn -> H.delete heap txn tid);
  Alcotest.(check bool) "double delete" true
    (try
       Db.with_txn db (fun txn -> H.delete heap txn tid);
       false
     with Invalid_argument _ -> true)

let test_time_travel_sees_history () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid1 = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "v1")) in
  Simclock.Clock.advance (Db.clock db) 10.;
  let t_after_v1 = Db.now db in
  Simclock.Clock.advance (Db.clock db) 10.;
  let tid2 = Db.with_txn db (fun txn -> H.update heap txn tid1 (payload "v2")) in
  (* as-of t_after_v1: v1 visible, v2 not *)
  let snap = Relstore.Snapshot.As_of t_after_v1 in
  (match H.fetch heap snap tid1 with
  | Some r -> Alcotest.(check string) "v1 at t1" "v1" (str r.payload)
  | None -> Alcotest.fail "v1 invisible in the past");
  Alcotest.(check bool) "v2 not yet" true (H.fetch heap snap tid2 = None);
  (* now: v2 only *)
  let now_snap = Relstore.Snapshot.As_of (Db.now db) in
  Alcotest.(check bool) "v1 dead now" true (H.fetch heap now_snap tid1 = None);
  Alcotest.(check bool) "v2 live now" true (H.fetch heap now_snap tid2 <> None)

let test_scan_visibility () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  Db.with_txn db (fun txn ->
      for i = 1 to 10 do
        ignore (H.insert heap txn ~oid:(Int64.of_int i) (payload (string_of_int i)))
      done);
  (* delete evens *)
  Db.with_txn db (fun txn ->
      let doomed = ref [] in
      H.scan heap (T.snapshot txn) (fun r ->
          if Int64.to_int r.oid mod 2 = 0 then doomed := r.tid :: !doomed);
      List.iter (fun tid -> H.delete heap txn tid) !doomed);
  let reader = Db.begin_txn db in
  let seen = ref [] in
  H.scan heap (T.snapshot reader) (fun r -> seen := Int64.to_int r.oid :: !seen);
  Alcotest.(check (list int)) "odds remain" [ 1; 3; 5; 7; 9 ] (List.sort compare !seen);
  T.abort reader

let test_crash_recovery_semantics () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid_committed =
    Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "durable"))
  in
  let txn = Db.begin_txn db in
  let tid_uncommitted = H.insert heap txn ~oid:2L (payload "volatile") in
  Db.crash db;
  (* no fsck, no replay: read immediately *)
  let reader = Db.begin_txn db in
  (match H.fetch heap (T.snapshot reader) tid_committed with
  | Some r -> Alcotest.(check string) "committed survives" "durable" (str r.payload)
  | None -> Alcotest.fail "committed data lost");
  Alcotest.(check bool) "uncommitted rolled back" true
    (H.fetch heap (T.snapshot reader) tid_uncommitted = None);
  T.abort reader

let test_large_payload_roundtrip () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let big = Bytes.init HP.max_payload (fun i -> Char.chr (i mod 251)) in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L big) in
  let reader = Db.begin_txn db in
  (match H.fetch heap (T.snapshot reader) tid with
  | Some r -> Alcotest.(check bytes) "8148-byte chunk" big r.payload
  | None -> Alcotest.fail "big record lost");
  T.abort reader

let test_verify_clean_heap () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  Db.with_txn db (fun txn ->
      for i = 1 to 100 do
        ignore (H.insert heap txn ~oid:(Int64.of_int i) (payload (String.make 100 'x')))
      done);
  Alcotest.(check bool) "verifies" true (H.verify heap = Ok ())

let test_aborted_deleter_leaves_visible () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "keep")) in
  let txn = Db.begin_txn db in
  H.delete heap txn tid;
  T.abort txn;
  let reader = Db.begin_txn db in
  (match H.fetch heap (T.snapshot reader) tid with
  | Some r -> Alcotest.(check string) "still visible" "keep" (str r.payload)
  | None -> Alcotest.fail "aborted delete hid the record");
  T.abort reader

let test_update_chain_history () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let clock = Db.clock db in
  let tid = ref (Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "v0"))) in
  let stamps = ref [] in
  for i = 1 to 5 do
    Simclock.Clock.advance clock 1.;
    stamps := (Db.now db, Printf.sprintf "v%d" (i - 1)) :: !stamps;
    Simclock.Clock.advance clock 1.;
    tid := Db.with_txn db (fun txn -> H.update heap txn !tid (payload (Printf.sprintf "v%d" i)))
  done;
  List.iter
    (fun (ts, expect) ->
      let seen = ref [] in
      H.scan heap (Relstore.Snapshot.As_of ts) (fun r -> seen := str r.payload :: !seen);
      Alcotest.(check (list string)) ("state at " ^ expect) [ expect ] !seen)
    !stamps

let test_vacuum_respects_horizon () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let clock = Db.clock db in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "old")) in
  Simclock.Clock.advance clock 10.;
  let horizon = Db.now db in
  Simclock.Clock.advance clock 10.;
  (* this version dies AFTER the horizon: it must be kept *)
  ignore (Db.with_txn db (fun txn -> H.update heap txn tid (payload "new")));
  let stats = Db.vacuum db ~relation:"t" ~horizon ~mode:`Discard () in
  Alcotest.(check int) "nothing before horizon was dead" 0 stats.discarded;
  Alcotest.(check bool) "old version still present" true (H.fetch_any heap tid <> None)

let test_scan_skips_unwritten_pages () =
  (* allocate a block directly on the device (never initialized as a heap
     page): scans and verify must tolerate it *)
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  Db.with_txn db (fun txn -> ignore (H.insert heap txn ~oid:1L (payload "x")));
  ignore (Pagestore.Device.allocate_block (H.device heap) (H.segid heap) : int);
  let reader = Db.begin_txn db in
  let n = ref 0 in
  H.scan heap (T.snapshot reader) (fun _ -> incr n);
  T.abort reader;
  Alcotest.(check int) "one record" 1 !n;
  Alcotest.(check bool) "verify tolerates zero page" true (H.verify heap = Ok ())

(* ---- Vacuum ---- *)

let test_vacuum_discard () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "v1")) in
  ignore (Db.with_txn db (fun txn -> H.update heap txn tid (payload "v2")));
  Simclock.Clock.advance (Db.clock db) 1.;
  let stats = Db.vacuum db ~relation:"t" ~mode:`Discard () in
  Alcotest.(check int) "one version discarded" 1 stats.discarded;
  Alcotest.(check bool) "old version physically gone" true (H.fetch_any heap tid = None);
  (* current version still readable *)
  let reader = Db.begin_txn db in
  let count = ref 0 in
  H.scan heap (T.snapshot reader) (fun _ -> incr count);
  Alcotest.(check int) "live record remains" 1 !count;
  T.abort reader

let test_vacuum_archive_preserves_time_travel () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "v1")) in
  Simclock.Clock.advance (Db.clock db) 5.;
  let t_v1 = Db.now db in
  Simclock.Clock.advance (Db.clock db) 5.;
  ignore (Db.with_txn db (fun txn -> H.update heap txn tid (payload "v2")));
  Simclock.Clock.advance (Db.clock db) 1.;
  let stats = Db.vacuum db ~relation:"t" ~mode:`Archive () in
  Alcotest.(check int) "archived" 1 stats.archived;
  (* time travel to t_v1 still finds v1, via the archive *)
  let snap = Relstore.Snapshot.As_of t_v1 in
  let seen = ref [] in
  H.scan heap snap (fun r -> seen := str r.payload :: !seen);
  Alcotest.(check (list string)) "v1 from archive" [ "v1" ] !seen

let test_vacuum_removes_aborted () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let txn = Db.begin_txn db in
  ignore (H.insert heap txn ~oid:1L (payload "junk"));
  T.abort txn;
  let stats = Db.vacuum db ~relation:"t" ~mode:`Discard () in
  Alcotest.(check int) "aborted garbage collected" 1 stats.discarded


(* ---- incremental concurrent vacuum & the WORM tier ---- *)

let test_vacuum_run_busy_guard () =
  (* the stop-the-world pass requires quiescence: with any transaction
     active it must refuse outright rather than yank pages from under it *)
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let open_txn = Db.begin_txn db in
  ignore (H.insert heap open_txn ~oid:1L (payload "x"));
  Alcotest.(check bool) "Busy raised while a txn is active" true
    (try
       ignore (Db.vacuum db ~relation:"t" ~mode:`Discard () : Relstore.Vacuum.stats);
       false
     with Relstore.Vacuum.Busy xids -> xids <> []);
  ignore (T.commit open_txn : int64);
  ignore (Db.vacuum db ~relation:"t" ~mode:`Discard () : Relstore.Vacuum.stats)

let dead_versions db heap n =
  (* [n] records, each updated once: [n] dead versions spread over the heap *)
  let tids =
    Array.init n (fun i ->
        Db.with_txn db (fun txn ->
            H.insert heap txn ~oid:(Int64.of_int i) (payload (String.make 300 'a'))))
  in
  Array.iter
    (fun tid ->
      ignore (Db.with_txn db (fun txn -> H.update heap txn tid (payload (String.make 300 'b')))))
    tids;
  Simclock.Clock.advance (Db.clock db) 1.

let test_vacuum_step_budget_and_cursor () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  dead_versions db heap 60;
  let nb = H.nblocks heap in
  Alcotest.(check bool) "heap spans several pages" true (nb > 2);
  let total = ref 0 and steps = ref 0 and wrapped = ref false in
  while not !wrapped do
    let st = Db.vacuum_step db ~relation:"t" ~mode:`Discard ~pages:1 () in
    incr steps;
    Alcotest.(check bool) "one-page budget respected" true (st.Relstore.Vacuum.s_pages <= 1);
    total := !total + st.Relstore.Vacuum.s_discarded;
    wrapped := st.Relstore.Vacuum.s_wrapped
  done;
  Alcotest.(check int) "full pass collects every dead version" 60 !total;
  Alcotest.(check bool) "took one step per page" true (!steps >= nb);
  (* idempotent: a second full pass finds nothing *)
  let again = ref 0 and wrapped = ref false in
  while not !wrapped do
    let st = Db.vacuum_step db ~relation:"t" ~mode:`Discard ~pages:4 () in
    again := !again + st.Relstore.Vacuum.s_discarded;
    wrapped := st.Relstore.Vacuum.s_wrapped
  done;
  Alcotest.(check int) "second pass is empty" 0 !again

let test_vacuum_step_yields_to_writer () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  dead_versions db heap 4;
  let w = Db.begin_txn db in
  H.write_lock heap w;
  let st = Db.vacuum_step db ~relation:"t" ~mode:`Discard ~pages:8 () in
  Alcotest.(check bool) "skipped while the writer holds the relation" true
    st.Relstore.Vacuum.s_skipped;
  Alcotest.(check int) "nothing touched" 0 st.Relstore.Vacuum.s_pages;
  T.abort w;
  let collected = ref 0 and wrapped = ref false in
  while not !wrapped do
    let st = Db.vacuum_step db ~relation:"t" ~mode:`Discard ~pages:8 () in
    Alcotest.(check bool) "runs after the writer releases" false
      st.Relstore.Vacuum.s_skipped;
    collected := !collected + st.Relstore.Vacuum.s_discarded;
    wrapped := st.Relstore.Vacuum.s_wrapped
  done;
  Alcotest.(check int) "cursor did not advance past the skip" 4 !collected

let test_vacuum_step_runs_alongside_reader () =
  (* Shared-vs-Shared: a reader never blocks the incremental vacuum, and
     the dead versions it can no longer see are collected under it *)
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  dead_versions db heap 3;
  let r = Db.begin_txn db in
  T.lock r ~resource:(H.resource heap) LM.Shared;
  let collected = ref 0 and wrapped = ref false in
  while not !wrapped do
    let st = Db.vacuum_step db ~relation:"t" ~mode:`Discard ~pages:8 () in
    Alcotest.(check bool) "reader does not block the step" false
      st.Relstore.Vacuum.s_skipped;
    collected := !collected + st.Relstore.Vacuum.s_discarded;
    wrapped := st.Relstore.Vacuum.s_wrapped
  done;
  Alcotest.(check int) "invisible versions collected under the reader" 3 !collected;
  T.abort r

let test_vacuum_on_remove_fires_exactly_once () =
  (* index maintenance contract, both flavours: every version leaving
     the main heap announces its TID exactly once *)
  let expect_removed heap =
    let dead = ref [] in
    H.scan_raw heap (fun r ->
        if Relstore.Xid.is_valid r.H.xmax
           && Relstore.Status_log.is_committed (H.status_log heap) r.H.xmax
        then dead := r.H.tid :: !dead);
    List.sort compare !dead
  in
  (* stop-the-world *)
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  dead_versions db heap 5;
  let expected = expect_removed heap in
  let removed = ref [] in
  ignore
    (Db.vacuum db ~relation:"t" ~mode:`Discard
       ~on_remove:(fun r -> removed := r.H.tid :: !removed)
       ()
      : Relstore.Vacuum.stats);
  Alcotest.(check int) "run: one callback per dead version" (List.length expected)
    (List.length !removed);
  Alcotest.(check bool) "run: exact tid set" true
    (List.sort compare !removed = expected);
  (* incremental, across the whole cursor pass *)
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  dead_versions db heap 5;
  let expected = expect_removed heap in
  let removed = ref [] and wrapped = ref false in
  while not !wrapped do
    let st =
      Db.vacuum_step db ~relation:"t" ~mode:`Discard ~pages:1
        ~on_remove:(fun r -> removed := r.H.tid :: !removed)
        ()
    in
    wrapped := st.Relstore.Vacuum.s_wrapped
  done;
  Alcotest.(check bool) "step: exact tid set, once each" true
    (List.sort compare !removed = expected)

let test_archive_is_append_only () =
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  dead_versions db heap 1;
  ignore (Db.vacuum db ~relation:"t" ~mode:`Archive () : Relstore.Vacuum.stats);
  let arch = Option.get (H.archive heap) in
  let archived = ref [] in
  H.scan_raw arch (fun r -> archived := r :: !archived);
  Alcotest.(check int) "one archived version" 1 (List.length !archived);
  let rejected f =
    try
      f ();
      false
    with H.Append_only _ -> true
  in
  Alcotest.(check bool) "insert on WORM rejected" true
    (rejected (fun () ->
         ignore (Db.with_txn db (fun txn -> H.insert arch txn ~oid:99L (payload "x")))));
  let victim = (List.hd !archived).H.tid in
  Alcotest.(check bool) "delete on WORM rejected" true
    (rejected (fun () -> ignore (Db.with_txn db (fun txn -> H.delete arch txn victim))));
  Alcotest.(check bool) "update on WORM rejected" true
    (rejected (fun () ->
         ignore (Db.with_txn db (fun txn -> H.update arch txn victim (payload "y")))));
  (* the one legal write: the vacuum's own raw append *)
  let r = List.hd !archived in
  ignore (H.append_raw arch ~oid:r.H.oid ~xmin:r.H.xmin ~xmax:r.H.xmax r.H.payload : Relstore.Tid.t)

let test_archive_duplicate_collapses () =
  (* a crash between the archive copy and the kill leaves the version on
     both tiers; As_of reads must collapse the duplicate, and a re-run
     of the step must not double anything *)
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "v1")) in
  Simclock.Clock.advance (Db.clock db) 5.;
  let t_v1 = Db.now db in
  Simclock.Clock.advance (Db.clock db) 5.;
  ignore (Db.with_txn db (fun txn -> H.update heap txn tid (payload "v2")));
  Simclock.Clock.advance (Db.clock db) 1.;
  (* attach the archive, then hand-plant the duplicate a torn step would
     leave behind: copy the dead version without killing the original *)
  ignore (Db.vacuum_step db ~relation:"t" ~mode:`Archive ~pages:0 () : Relstore.Vacuum.step_stats);
  let arch = Option.get (H.archive heap) in
  let dead = Option.get (H.fetch_any heap tid) in
  ignore (H.append_raw arch ~oid:dead.H.oid ~xmin:dead.H.xmin ~xmax:dead.H.xmax dead.H.payload
           : Relstore.Tid.t);
  let versions_at ts =
    let seen = ref [] in
    H.scan heap (Relstore.Snapshot.As_of ts) (fun r -> seen := str r.H.payload :: !seen);
    !seen
  in
  Alcotest.(check (list string)) "duplicate collapsed" [ "v1" ] (versions_at t_v1);
  (* now the real pass archives it and kills the original *)
  let wrapped = ref false in
  while not !wrapped do
    let st = Db.vacuum_step db ~relation:"t" ~mode:`Archive ~pages:4 () in
    wrapped := st.Relstore.Vacuum.s_wrapped
  done;
  Alcotest.(check bool) "original gone from the main heap" true (H.fetch_any heap tid = None);
  Alcotest.(check (list string)) "still exactly one v1" [ "v1" ] (versions_at t_v1)

let test_lease_holds_the_horizon () =
  (* an As_of holder registers a lease; the safe horizon stays below it
     so the versions it reads cannot be reclaimed until release *)
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  let tid = Db.with_txn db (fun txn -> H.insert heap txn ~oid:1L (payload "v1")) in
  Simclock.Clock.advance (Db.clock db) 5.;
  let ts = Db.now db in
  let lease = Db.acquire_lease db ~horizon:ts in
  Simclock.Clock.advance (Db.clock db) 5.;
  ignore (Db.with_txn db (fun txn -> H.update heap txn tid (payload "v2")));
  Simclock.Clock.advance (Db.clock db) 1.;
  let sweep () =
    let n = ref 0 and wrapped = ref false in
    while not !wrapped do
      let st = Db.vacuum_step db ~relation:"t" ~mode:`Discard ~pages:4 () in
      n := !n + st.Relstore.Vacuum.s_discarded;
      wrapped := st.Relstore.Vacuum.s_wrapped
    done;
    !n
  in
  Alcotest.(check int) "leased version survives the sweep" 0 (sweep ());
  Alcotest.(check bool) "still readable at the lease horizon" true
    (H.fetch_any heap tid <> None);
  Db.release_lease db lease;
  Alcotest.(check int) "released: the sweep reclaims it" 1 (sweep ())

(* ---- Db plumbing ---- *)

let test_db_relations () =
  let db = fresh_db () in
  ignore (Db.create_relation db ~name:"a" ());
  ignore (Db.create_relation db ~name:"b" ());
  Alcotest.(check (list string)) "listed" [ "a"; "b" ] (Db.relations db);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Db.create_relation db ~name:"a" ());
       false
     with Invalid_argument _ -> true);
  Db.drop_relation db "a";
  Alcotest.(check bool) "dropped" false (Db.relation_exists db "a")

let test_db_oids_unique () =
  let db = fresh_db () in
  let a = Db.allocate_oid db in
  let b = Db.allocate_oid db in
  Alcotest.(check bool) "monotone" true (Int64.compare a b < 0)

(* ---- group commit ---- *)

let read_counter name = match Obs.Metrics.read name with Some v -> v | None -> 0

let test_group_commit_batches_forces () =
  let h = Obs.Metrics.histogram "txn.commit.group_size" in
  let run ?group_commit () =
    let db = Db.create ?group_commit () in
    let heap = Db.create_relation db ~name:"r" () in
    let d0 = read_counter "log.commit.durable" in
    let f0 = Obs.Metrics.hist_count h in
    let t0 = Simclock.Clock.now (Db.clock db) in
    for i = 1 to 8 do
      Db.with_txn db (fun txn ->
          ignore (H.insert heap txn ~oid:(Int64.of_int i) (payload "x") : Relstore.Tid.t))
    done;
    Db.force_group db;
    ( Simclock.Clock.now (Db.clock db) -. t0,
      read_counter "log.commit.durable" - d0,
      Obs.Metrics.hist_count h - f0 )
  in
  let off_t, off_durable, off_flushes = run () in
  let on_t, on_durable, on_flushes = run ~group_commit:8 () in
  Alcotest.(check int) "durable commits equal" off_durable on_durable;
  Alcotest.(check int) "off: one force per commit" 8 off_flushes;
  Alcotest.(check int) "on: one force for the batch" 1 on_flushes;
  (* the batch is charged one stable write where the seed path pays
     eight: the grouped run must finish earlier on the simulated clock *)
  Alcotest.(check bool) "batched run is cheaper" true (on_t < off_t)

let test_status_log_group_api () =
  let clock = Simclock.Clock.create () in
  let log = SL.create ~clock in
  SL.set_group_size log 3;
  SL.set_flush_wait_us log 500;
  let commit_one () =
    let x = SL.begin_txn log in
    ignore (SL.commit ~force:true log x : int64)
  in
  commit_one ();
  Alcotest.(check int) "pending 1" 1 (SL.pending_force log);
  Alcotest.(check bool) "not size_due yet" false (SL.size_due log);
  commit_one ();
  commit_one ();
  Alcotest.(check bool) "size_due at 3" true (SL.size_due log);
  Alcotest.(check int) "force covers the batch" 3 (SL.force_pending log);
  Alcotest.(check int) "drained" 0 (SL.pending_force log);
  (* age bound: a lone pending commit comes due after flush_wait_us *)
  commit_one ();
  Alcotest.(check bool) "fresh batch not age_due" false (SL.age_due log);
  Simclock.Clock.advance clock 0.001;
  Alcotest.(check bool) "age_due after the wait" true (SL.age_due log);
  Alcotest.(check int) "age force covers it" 1 (SL.force_pending log)

let test_intents_follow_transaction_outcome () =
  let clock = Simclock.Clock.create () in
  let log = SL.create ~clock in
  SL.set_group_size log 4;
  let x1 = SL.begin_txn log in
  SL.log_intent log x1 ~tree:"d:1" ~key:"k1" ~value:1L;
  let x2 = SL.begin_txn log in
  SL.log_intent log x2 ~tree:"d:1" ~key:"k2" ~value:2L;
  ignore (SL.commit ~force:true log x1 : int64);
  SL.abort log x2;
  Alcotest.(check int) "aborted intent dropped" 1 (SL.intent_count log);
  (match SL.committed_intents log with
  | [ (x, [ ("d:1", "k1", 1L) ]) ] -> Alcotest.(check int) "xid" x1 x
  | _ -> Alcotest.fail "committed_intents should list exactly x1's intent");
  SL.clear_settled_intents log;
  Alcotest.(check int) "settled cleared" 0 (SL.intent_count log)

let test_group_commit_survives_crash () =
  let clock = Simclock.Clock.create () in
  let log = SL.create ~clock in
  SL.set_group_size log 4;
  let x1 = SL.begin_txn log in
  SL.log_intent log x1 ~tree:"d:1" ~key:"k1" ~value:1L;
  ignore (SL.commit ~force:true log x1 : int64);
  let x2 = SL.begin_txn log in
  SL.log_intent log x2 ~tree:"d:1" ~key:"k2" ~value:2L;
  Alcotest.(check int) "one pending" 1 (SL.pending_force log);
  SL.crash_recover log;
  (* the status area is NVRAM-backed: the enqueued-but-unforced commit
     survives the crash; the in-flight transaction dies with its intent *)
  Alcotest.(check bool) "x1 committed" true (SL.is_committed log x1);
  Alcotest.(check bool) "x2 aborted" true (SL.state log x2 = SL.Aborted);
  Alcotest.(check int) "pending reset" 0 (SL.pending_force log);
  match SL.committed_intents log with
  | [ (_, [ ("d:1", "k1", 1L) ]) ] -> ()
  | _ -> Alcotest.fail "x1's intent must survive for REDO; x2's must not"

let test_fsck_detects_media_corruption () =
  (* "The only difficulties arise when the physical storage medium is
     damaged" — flip bytes behind the storage manager's back and the
     self-identifying blocks must notice *)
  let db = fresh_db () in
  let heap = Db.create_relation db ~name:"t" () in
  Db.with_txn db (fun txn ->
      for i = 1 to 50 do
        ignore (H.insert heap txn ~oid:(Int64.of_int i) (payload (String.make 200 'd')))
      done);
  Alcotest.(check bool) "clean before damage" true (H.verify heap = Ok ());
  (* flip a byte directly on the medium *)
  let dev = H.device heap in
  let page = Pagestore.Device.peek_block dev ~segid:(H.segid heap) ~blkno:0 in
  P.set_u8 page 2000 (P.get_u8 page 2000 lxor 0xFF);
  Pagestore.Device.poke_block dev ~segid:(H.segid heap) ~blkno:0 page;
  (* the cache may still hold the clean copy: drop it *)
  Pagestore.Bufcache.crash (Db.cache db);
  (match H.verify heap with
  | Error msg ->
    Alcotest.(check bool) ("detected: " ^ msg) true
      (String.length msg > 0)
  | Ok () -> Alcotest.fail "corruption went undetected")

let prop_heap_page_model =
  (* model-based slotted page: insert/kill/compact against an assoc list *)
  QCheck.Test.make ~name:"heap page matches slot model" ~count:100
    QCheck.(
      list_of_size Gen.(int_range 1 60)
        (pair (int_bound 2) (string_of_size Gen.(int_range 0 80))))
    (fun ops ->
      let page = P.create () in
      HP.init page ~relid:9L ~blkno:0;
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let next_oid = ref 0L in
      List.iter
        (fun (kind, data) ->
          match kind with
          | 0 | 1 -> (
            (* insert *)
            next_oid := Int64.add !next_oid 1L;
            match HP.insert page ~oid:!next_oid ~xmin:1 ~payload:(payload data) with
            | Some slot -> Hashtbl.replace model slot data
            | None -> () (* page full: model unchanged *))
          | _ ->
            (* kill a random-ish live slot, then sometimes compact *)
            (match Hashtbl.fold (fun k _ _ -> Some k) model None with
            | Some slot ->
              HP.kill_slot page ~slot;
              Hashtbl.remove model slot
            | None -> ());
            if String.length data mod 2 = 0 then HP.compact page)
        ops;
      Hashtbl.fold
        (fun slot expect acc ->
          acc
          &&
          match HP.read_record page ~slot with
          | Some r -> str r.payload = expect
          | None -> false)
        model true)

let prop_mvcc_last_committed_wins =
  QCheck.Test.make ~name:"visible version is last committed update" ~count:30
    QCheck.(list_of_size Gen.(int_range 1 12) (string_of_size (Gen.return 6)))
    (fun values ->
      let db = fresh_db () in
      let heap = Db.create_relation db ~name:"t" () in
      let tid = ref None in
      List.iter
        (fun v ->
          Db.with_txn db (fun txn ->
              match !tid with
              | None -> tid := Some (H.insert heap txn ~oid:1L (payload v))
              | Some old -> tid := Some (H.update heap txn old (payload v))))
        values;
      let reader = Db.begin_txn db in
      let visible = ref [] in
      H.scan heap (T.snapshot reader) (fun r -> visible := str r.payload :: !visible);
      T.abort reader;
      !visible = [ List.nth values (List.length values - 1) ])

let prop_time_travel_monotone_history =
  QCheck.Test.make ~name:"as-of snapshots replay history exactly" ~count:20
    QCheck.(list_of_size Gen.(int_range 1 8) (string_of_size (Gen.return 4)))
    (fun values ->
      let db = fresh_db () in
      let heap = Db.create_relation db ~name:"t" () in
      let tid = ref None in
      let stamps =
        List.map
          (fun v ->
            Simclock.Clock.advance (Db.clock db) 1.;
            Db.with_txn db (fun txn ->
                match !tid with
                | None -> tid := Some (H.insert heap txn ~oid:1L (payload v))
                | Some old -> tid := Some (H.update heap txn old (payload v)));
            Simclock.Clock.advance (Db.clock db) 0.001;
            (Db.now db, v))
          values
      in
      List.for_all
        (fun (ts, expect) ->
          let seen = ref [] in
          H.scan heap (Relstore.Snapshot.As_of ts) (fun r -> seen := str r.payload :: !seen);
          !seen = [ expect ])
        stamps)

let () =
  Alcotest.run "relstore"
    [
      ( "heap_page",
        [
          Alcotest.test_case "insert/read" `Quick test_page_insert_read;
          Alcotest.test_case "fill until full" `Quick test_page_fill_until_full;
          Alcotest.test_case "max payload" `Quick test_page_max_payload;
          Alcotest.test_case "compact preserves TIDs" `Quick test_page_compact_preserves_tids;
          Alcotest.test_case "self-identification" `Quick test_page_self_identification;
        ] );
      ( "status_log",
        [
          Alcotest.test_case "lifecycle" `Quick test_status_lifecycle;
          Alcotest.test_case "crash recovery" `Quick test_status_crash_recovery;
          Alcotest.test_case "committed_before" `Quick test_committed_before;
        ] );
      ( "locks",
        [
          Alcotest.test_case "shared compatible" `Quick test_lock_shared_compatible;
          Alcotest.test_case "exclusive conflicts" `Quick test_lock_exclusive_conflicts;
          Alcotest.test_case "upgrade" `Quick test_lock_upgrade;
          Alcotest.test_case "deadlock detection" `Quick test_lock_deadlock_detected;
          Alcotest.test_case "release unblocks" `Quick test_lock_release_unblocks;
        ] );
      ( "heap+mvcc",
        [
          Alcotest.test_case "insert/fetch" `Quick test_heap_insert_fetch;
          Alcotest.test_case "own changes visible" `Quick test_heap_own_changes_visible;
          Alcotest.test_case "aborted invisible" `Quick test_heap_aborted_invisible;
          Alcotest.test_case "delete/update versions" `Quick test_heap_delete_and_update;
          Alcotest.test_case "double delete rejected" `Quick test_heap_double_delete_rejected;
          Alcotest.test_case "time travel" `Quick test_time_travel_sees_history;
          Alcotest.test_case "scan visibility" `Quick test_scan_visibility;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery_semantics;
          Alcotest.test_case "full-page payload" `Quick test_large_payload_roundtrip;
          Alcotest.test_case "self-identifying pages verify" `Quick test_verify_clean_heap;
        ] );
      ( "media",
        [
          Alcotest.test_case "fsck detects corruption" `Quick
            test_fsck_detects_media_corruption;
        ] );
      ( "mvcc edge cases",
        [
          Alcotest.test_case "aborted delete invisible" `Quick
            test_aborted_deleter_leaves_visible;
          Alcotest.test_case "update chain history" `Quick test_update_chain_history;
          Alcotest.test_case "vacuum horizon" `Quick test_vacuum_respects_horizon;
          Alcotest.test_case "zero pages tolerated" `Quick test_scan_skips_unwritten_pages;
        ] );
      ( "vacuum",
        [
          Alcotest.test_case "discard" `Quick test_vacuum_discard;
          Alcotest.test_case "archive keeps history" `Quick
            test_vacuum_archive_preserves_time_travel;
          Alcotest.test_case "aborted garbage" `Quick test_vacuum_removes_aborted;
          Alcotest.test_case "run refuses active txns" `Quick test_vacuum_run_busy_guard;
          Alcotest.test_case "step budget and cursor" `Quick
            test_vacuum_step_budget_and_cursor;
          Alcotest.test_case "step yields to writer" `Quick test_vacuum_step_yields_to_writer;
          Alcotest.test_case "step runs alongside reader" `Quick
            test_vacuum_step_runs_alongside_reader;
          Alcotest.test_case "on_remove fires exactly once" `Quick
            test_vacuum_on_remove_fires_exactly_once;
          Alcotest.test_case "archive tier is append-only" `Quick test_archive_is_append_only;
          Alcotest.test_case "torn-step duplicate collapses" `Quick
            test_archive_duplicate_collapses;
          Alcotest.test_case "lease holds the horizon" `Quick test_lease_holds_the_horizon;
        ] );
      ( "db",
        [
          Alcotest.test_case "relation catalog" `Quick test_db_relations;
          Alcotest.test_case "oid allocation" `Quick test_db_oids_unique;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "batched force accounting" `Quick
            test_group_commit_batches_forces;
          Alcotest.test_case "size and age triggers" `Quick test_status_log_group_api;
          Alcotest.test_case "intent lifecycle" `Quick
            test_intents_follow_transaction_outcome;
          Alcotest.test_case "enqueued commits survive crash" `Quick
            test_group_commit_survives_crash;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heap_page_model;
            prop_mvcc_last_committed_wins;
            prop_time_travel_monotone_history;
          ] );
    ]
