(* Query language: values, lexer, parser, registry, evaluator. *)

module V = Postquel.Value
module A = Postquel.Ast
module L = Postquel.Lexer
module P = Postquel.Parser
module R = Postquel.Registry
module E = Postquel.Eval

(* ---- values ---- *)

let test_value_equality () =
  Alcotest.(check bool) "int eq" true (V.equal (V.Int 3L) (V.Int 3L));
  Alcotest.(check bool) "int/float coerce" true (V.equal (V.Int 3L) (V.Float 3.0));
  Alcotest.(check bool) "null never equal" false (V.equal V.Null V.Null);
  Alcotest.(check bool) "list eq" true
    (V.equal (V.List [ V.Int 1L; V.Str "a" ]) (V.List [ V.Int 1L; V.Str "a" ]))

let test_value_compare () =
  Alcotest.(check bool) "3 < 4" true (V.compare_values (V.Int 3L) (V.Int 4L) = Some (-1));
  Alcotest.(check bool) "str order" true
    (V.compare_values (V.Str "abc") (V.Str "abd") = Some (-1));
  Alcotest.(check bool) "null incomparable" true
    (V.compare_values V.Null (V.Int 1L) = None);
  Alcotest.(check bool) "mixed incomparable" true
    (V.compare_values (V.Str "a") (V.Int 1L) = None)

let test_value_member () =
  Alcotest.(check bool) "list member" true
    (V.member (V.Str "RISC") (V.List [ V.Str "CISC"; V.Str "RISC" ]));
  Alcotest.(check bool) "substring" true (V.member (V.Str "RIS") (V.Str "RISC chips"));
  Alcotest.(check bool) "not substring" false (V.member (V.Str "MIPS") (V.Str "RISC"));
  Alcotest.(check bool) "empty needle" true (V.member (V.Str "") (V.Str "x"))

let test_value_arith () =
  Alcotest.(check bool) "int add" true (V.equal (V.add (V.Int 2L) (V.Int 3L)) (V.Int 5L));
  Alcotest.(check bool) "mixed mul" true
    (V.equal (V.mul (V.Int 2L) (V.Float 1.5)) (V.Float 3.0));
  Alcotest.(check bool) "div promotes" true
    (V.equal (V.div (V.Int 1L) (V.Int 2L)) (V.Float 0.5));
  Alcotest.(check bool) "int div exact" true
    (V.equal (V.div (V.Int 6L) (V.Int 3L)) (V.Int 2L));
  Alcotest.(check bool) "div by zero is null" true (V.div (V.Int 1L) (V.Int 0L) = V.Null);
  Alcotest.(check bool) "null propagates" true (V.add V.Null (V.Int 1L) = V.Null)

(* ---- lexer ---- *)

let test_lexer_basics () =
  let toks = L.tokenize {|retrieve (filename) where size(file) >= 10.5|} in
  Alcotest.(check (list string))
    "token stream"
    [
      "retrieve"; "("; "IDENT(filename)"; ")"; "where"; "IDENT(size)"; "(";
      "IDENT(file)"; ")"; ">="; "FLOAT(10.5)"; "<eof>";
    ]
    (List.map L.token_to_string toks)

let test_lexer_strings () =
  (match L.tokenize {|"hello \"world\""|} with
  | [ L.STRING s; L.EOF ] -> Alcotest.(check string) "escapes" {|hello "world"|} s
  | _ -> Alcotest.fail "bad tokens");
  Alcotest.(check bool) "unterminated raises" true
    (try
       ignore (L.tokenize {|"oops|});
       false
     with L.Lex_error _ -> true)

let test_lexer_case_insensitive_keywords () =
  match L.tokenize "RETRIEVE Where AND" with
  | [ L.KW_RETRIEVE; L.KW_WHERE; L.KW_AND; L.EOF ] -> ()
  | _ -> Alcotest.fail "keywords should be case-insensitive"

(* ---- parser ---- *)

let roundtrip s = A.statement_to_string (P.parse_statement s)

let test_parse_paper_queries () =
  (* the three queries that appear in the paper *)
  let q1 = {|retrieve (filename) where "RISC" in keywords(file)|} in
  Alcotest.(check string) "q1"
    {|retrieve (filename) where ("RISC" in keywords(file))|} (roundtrip q1);
  let q2 =
    {|retrieve (snow(file), filename) where filetype(file) = "tm" and snow(file)/size(file) > 0.5 and month_of(file) = "April"|}
  in
  Alcotest.(check bool) "q2 parses" true (String.length (roundtrip q2) > 0);
  let q3 =
    {|retrieve (filename) where owner(file) = "mao" and (filetype(file) = "movie" or filetype(file) = "sound") and dir(file) = "/users/mao"|}
  in
  Alcotest.(check bool) "q3 parses" true (String.length (roundtrip q3) > 0)

let test_parse_precedence () =
  (* and binds tighter than or; arithmetic tighter than comparison *)
  let e = P.parse_expr "a = 1 or b = 2 and c = 3" in
  (match e with
  | A.Binop (A.Or, _, A.Binop (A.And, _, _)) -> ()
  | _ -> Alcotest.failf "wrong shape: %s" (A.expr_to_string e));
  let e2 = P.parse_expr "x + 2 * y < 10" in
  match e2 with
  | A.Binop (A.Lt, A.Binop (A.Add, _, A.Binop (A.Mul, _, _)), _) -> ()
  | _ -> Alcotest.failf "wrong arith shape: %s" (A.expr_to_string e2)

let test_parse_define_type () =
  match P.parse_statement "define type tm" with
  | A.Define_type "tm" -> ()
  | _ -> Alcotest.fail "define type"

let test_parse_errors () =
  let bad s =
    try
      ignore (P.parse_statement s);
      false
    with P.Parse_error _ | L.Lex_error _ -> true
  in
  Alcotest.(check bool) "empty retrieve" true (bad "retrieve ()");
  Alcotest.(check bool) "trailing junk" true (bad "retrieve (x) garbage");
  Alcotest.(check bool) "not a statement" true (bad "select * from t");
  Alcotest.(check bool) "unbalanced" true (bad "retrieve (f(x)")

let test_parse_unary_minus () =
  let e = P.parse_expr "-5 + 3" in
  match e with
  | A.Binop (A.Add, A.Binop (A.Sub, A.Const (V.Int 0L), A.Const (V.Int 5L)), _) -> ()
  | _ -> Alcotest.failf "unary minus shape: %s" (A.expr_to_string e)

(* ---- registry ---- *)

let test_registry_types () =
  let r = R.create () in
  R.define_type r "tm";
  R.define_type r "tm";
  Alcotest.(check (list string)) "types" [ "tm" ] (R.types r);
  Alcotest.(check bool) "exists" true (R.type_exists r "tm");
  Alcotest.(check bool) "unknown type rejected" true
    (try
       R.register r ~name:"f" ~file_type:"nope" (fun _ -> V.Null);
       false
     with Invalid_argument _ -> true)

let test_registry_typed_dispatch () =
  let r = R.create () in
  R.define_type r "tm";
  R.register r ~name:"snow" ~file_type:"tm" (fun _ -> V.Int 42L);
  R.register r ~name:"size" (fun _ -> V.Int 7L);
  Alcotest.(check bool) "matches type" true
    (R.find_for_type r ~name:"snow" ~file_type:(Some "tm") <> None);
  Alcotest.(check bool) "wrong type" true
    (R.find_for_type r ~name:"snow" ~file_type:(Some "ascii") = None);
  Alcotest.(check bool) "no type" true
    (R.find_for_type r ~name:"snow" ~file_type:None = None);
  Alcotest.(check bool) "untyped applies anywhere" true
    (R.find_for_type r ~name:"size" ~file_type:(Some "whatever") <> None);
  Alcotest.(check (list string)) "functions for tm" [ "size"; "snow" ]
    (R.functions_for_type r "tm")

(* ---- evaluator ---- *)

let eval_env vars =
  {
    E.lookup = (fun name -> List.assoc_opt name vars);
    E.type_of = (fun _ -> Some "tm");
  }

let test_eval_basic () =
  let r = R.create () in
  let env = eval_env [ ("x", V.Int 10L); ("s", V.Str "hello") ] in
  let ev src = E.eval r env (P.parse_expr src) in
  Alcotest.(check bool) "arith" true (V.equal (ev "x * 2 + 1") (V.Int 21L));
  Alcotest.(check bool) "compare" true (V.truthy (ev "x > 5 and x < 20"));
  Alcotest.(check bool) "or short" true (V.truthy (ev {|x = 10 or s = "nope"|}));
  Alcotest.(check bool) "not" true (V.truthy (ev "not (x = 11)"));
  Alcotest.(check bool) "in substring" true (V.truthy (ev {|"ell" in s|}))

let test_eval_null_semantics () =
  let r = R.create () in
  let env = eval_env [] in
  let ev src = E.eval r env (P.parse_expr src) in
  Alcotest.(check bool) "unbound var is null" true (ev "missing" = V.Null);
  Alcotest.(check bool) "null = never true" false (V.truthy (ev "missing = missing"));
  Alcotest.(check bool) "null != never true" false (V.truthy (ev "missing != 1"));
  Alcotest.(check bool) "null < never true" false (V.truthy (ev "missing < 1"))

let test_eval_functions () =
  let r = R.create () in
  R.define_type r "tm";
  R.register r ~name:"snow" ~file_type:"tm" ~arity:1 (fun _ -> V.Int 900L);
  R.register r ~name:"double" ~arity:1 (fun args ->
      match args with [ V.Int x ] -> V.Int (Int64.mul 2L x) | _ -> V.Null);
  let env = eval_env [ ("file", V.Int 1L) ] in
  let ev src = E.eval r env (P.parse_expr src) in
  Alcotest.(check bool) "typed fn applies" true (V.equal (ev "snow(file)") (V.Int 900L));
  Alcotest.(check bool) "fn composition" true (V.equal (ev "double(snow(file))") (V.Int 1800L));
  Alcotest.(check bool) "unknown fn raises" true
    (try
       ignore (ev "bogus(file)");
       false
     with E.Unknown_function "bogus" -> true);
  Alcotest.(check bool) "arity checked" true
    (try
       ignore (ev "double(1, 2)");
       false
     with E.Arity_mismatch ("double", 1, 2) -> true)

let test_eval_typed_mismatch_is_null () =
  let r = R.create () in
  R.define_type r "tm";
  R.register r ~name:"snow" ~file_type:"tm" (fun _ -> V.Int 1L);
  let env =
    { E.lookup = (fun _ -> Some (V.Int 9L)); E.type_of = (fun _ -> Some "ascii") }
  in
  Alcotest.(check bool) "wrong type yields null" true
    (E.eval r env (P.parse_expr "snow(file)") = V.Null);
  Alcotest.(check bool) "predicate false, no error" false
    (V.truthy (E.eval r env (P.parse_expr "snow(file) > 0")))

let test_eval_list_membership_from_function () =
  let r = R.create () in
  R.register r ~name:"keywords" (fun _ -> V.List [ V.Str "RISC"; V.Str "UNIX" ]);
  let env = eval_env [ ("file", V.Int 1L) ] in
  let ev src = E.eval r env (P.parse_expr src) in
  Alcotest.(check bool) "member" true (V.truthy (ev {|"RISC" in keywords(file)|}));
  Alcotest.(check bool) "non-member" false (V.truthy (ev {|"VAX" in keywords(file)|}))

let test_eval_mixed_types_false_not_crash () =
  let r = R.create () in
  let env = eval_env [ ("s", V.Str "abc"); ("n", V.Int 3L) ] in
  let ev src = E.eval r env (P.parse_expr src) in
  Alcotest.(check bool) "string < int is false" false (V.truthy (ev "s < n"));
  Alcotest.(check bool) "string + int is null" true (ev "s + n" = V.Null);
  Alcotest.(check bool) "null arith predicate false" false (V.truthy (ev "s + n > 0"))

let test_not_precedence () =
  let r = R.create () in
  let env = eval_env [ ("x", V.Int 1L) ] in
  let ev src = E.eval r env (P.parse_expr src) in
  (* not binds tighter than and: (not false) and true *)
  Alcotest.(check bool) "not and" true (V.truthy (ev "not x = 2 and x = 1"));
  Alcotest.(check bool) "double negation" true (V.truthy (ev "not not x = 1"))

let test_statement_print_reparse () =
  let srcs =
    [
      {|retrieve (filename) where "RISC" in keywords(file)|};
      {|retrieve (a, b, c)|};
      {|retrieve (snow(file) / size(file)) where x > 0.5 and (y = 1 or z = 2)|};
    ]
  in
  List.iter
    (fun src ->
      let ast = P.parse_statement src in
      let printed = A.statement_to_string ast in
      Alcotest.(check bool) src true (P.parse_statement printed = ast))
    srcs

(* ---- properties ---- *)

let expr_gen =
  (* random small arithmetic over two int vars: model vs evaluator *)
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun i -> `Int i) (int_range 0 50); return `X; return `Y ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map3
              (fun op a b -> `Bin (op, a, b))
              (oneofl [ `Add; `Sub; `Mul ])
              (go (depth - 1)) (go (depth - 1)) );
        ]
  in
  go 3

let rec to_src = function
  | `Int i -> string_of_int i
  | `X -> "x"
  | `Y -> "y"
  | `Bin (op, a, b) ->
    let o = match op with `Add -> "+" | `Sub -> "-" | `Mul -> "*" in
    Printf.sprintf "(%s %s %s)" (to_src a) o (to_src b)

let rec model x y = function
  | `Int i -> Int64.of_int i
  | `X -> x
  | `Y -> y
  | `Bin (op, a, b) ->
    let va = model x y a and vb = model x y b in
    (match op with
    | `Add -> Int64.add va vb
    | `Sub -> Int64.sub va vb
    | `Mul -> Int64.mul va vb)

let prop_eval_matches_model =
  QCheck.Test.make ~name:"evaluator matches arithmetic model" ~count:200
    (QCheck.make expr_gen ~print:to_src)
    (fun e ->
      let r = R.create () in
      let env = eval_env [ ("x", V.Int 7L); ("y", V.Int (-3L)) ] in
      V.equal (E.eval r env (P.parse_expr (to_src e))) (V.Int (model 7L (-3L) e)))

let prop_parser_roundtrip =
  QCheck.Test.make ~name:"printed expr reparses to same tree" ~count:200
    (QCheck.make expr_gen ~print:to_src)
    (fun e ->
      let src = to_src e in
      let ast = P.parse_expr src in
      let printed = A.expr_to_string ast in
      P.parse_expr printed = ast)

(* ---- fuzzing ---- *)

(* Render a token back to concrete syntax the lexer accepts.  The debug
   printer [token_to_string] emits IDENT(x) / STRING("x") forms that do
   not re-lex, so the fuzzer needs its own renderer. *)
let token_to_src = function
  | L.IDENT s -> s
  | L.STRING s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  | L.INT i -> Int64.to_string i
  | L.FLOAT f -> Printf.sprintf "%.3f" f
  | L.LPAREN -> "("
  | L.RPAREN -> ")"
  | L.COMMA -> ","
  | L.EQ -> "="
  | L.NE -> "!="
  | L.LT -> "<"
  | L.LE -> "<="
  | L.GT -> ">"
  | L.GE -> ">="
  | L.PLUS -> "+"
  | L.MINUS -> "-"
  | L.STAR -> "*"
  | L.SLASH -> "/"
  | L.KW_RETRIEVE -> "retrieve"
  | L.KW_WHERE -> "where"
  | L.KW_DEFINE -> "define"
  | L.KW_TYPE -> "type"
  | L.KW_AND -> "and"
  | L.KW_OR -> "or"
  | L.KW_NOT -> "not"
  | L.KW_IN -> "in"
  | L.EOF -> ""

let fuzz_corpus =
  [
    {|retrieve (filename) where "RISC" in keywords(file)|};
    {|retrieve (snow(file), filename) where filetype(file) = "tm" and snow(file)/size(file) > 0.5 and month_of(file) = "April"|};
    {|retrieve (filename) where owner(file) = "mao" and (filetype(file) = "movie" or filetype(file) = "sound") and dir(file) = "/users/mao"|};
    "define type tm";
    "retrieve (a, b, c)";
    {|retrieve (x + 2 * y) where not x = -1 or "a\"b" in s|};
    "retrieve (f(1, 2.5, g(x)))";
  ]

(* Anything other than the two typed errors escaping the front end is a
   crash: the parser's contract (parser.mli) is Parse_error | Lex_error. *)
let parses_or_fails_typed src =
  match P.parse_statement src with
  | (_ : A.statement) -> None
  | exception (P.Parse_error _ | L.Lex_error _) -> None
  | exception e -> Some (Printexc.to_string e)

let test_fuzz_token_mutations () =
  let rng = Random.State.make [| 0xB10C; 5 |] in
  let pool = Array.of_list (List.concat_map L.tokenize fuzz_corpus) in
  let pick_tok () = pool.(Random.State.int rng (Array.length pool)) in
  let mutate toks =
    let n = List.length toks in
    if n = 0 then [ pick_tok () ]
    else
      let k = Random.State.int rng n in
      match Random.State.int rng 4 with
      | 0 -> List.filteri (fun i _ -> i <> k) toks (* drop *)
      | 1 -> List.concat (List.mapi (fun i t -> if i = k then [ t; t ] else [ t ]) toks)
      | 2 -> List.mapi (fun i t -> if i = k then pick_tok () else t) toks (* replace *)
      | _ ->
        List.concat
          (List.mapi (fun i t -> if i = k then [ pick_tok (); t ] else [ t ]) toks)
  in
  let crashes = ref [] in
  for _ = 1 to 1500 do
    let base = List.nth fuzz_corpus (Random.State.int rng (List.length fuzz_corpus)) in
    let toks = L.tokenize base in
    let rounds = 1 + Random.State.int rng 3 in
    let toks = List.fold_left (fun t _ -> mutate t) toks (List.init rounds Fun.id) in
    let src =
      String.concat " "
        (List.filter_map
           (fun t -> match token_to_src t with "" -> None | s -> Some s)
           toks)
    in
    match parses_or_fails_typed src with
    | None -> ()
    | Some e -> crashes := (src, e) :: !crashes
  done;
  match !crashes with
  | [] -> ()
  | (src, e) :: _ ->
    Alcotest.failf "parser crashed on %d mutated inputs, e.g. %s on %S"
      (List.length !crashes) e src

let test_fuzz_char_mutations () =
  let rng = Random.State.make [| 0xF00D; 17 |] in
  let alphabet = {|abz019"().,=<>!+-*/\ _|} in
  let pick_char () = alphabet.[Random.State.int rng (String.length alphabet)] in
  let mutate src =
    let n = String.length src in
    if n = 0 then String.make 1 (pick_char ())
    else
      let k = Random.State.int rng n in
      match Random.State.int rng 3 with
      | 0 -> String.sub src 0 k ^ String.sub src (k + 1) (n - k - 1) (* delete *)
      | 1 ->
        String.sub src 0 k
        ^ String.make 1 (pick_char ())
        ^ String.sub src (k + 1) (n - k - 1) (* replace *)
      | _ -> String.sub src 0 k ^ String.make 1 (pick_char ()) ^ String.sub src k (n - k)
  in
  let crashes = ref [] in
  for _ = 1 to 2500 do
    let base = List.nth fuzz_corpus (Random.State.int rng (List.length fuzz_corpus)) in
    let rounds = 1 + Random.State.int rng 5 in
    let src = ref base in
    for _ = 1 to rounds do
      src := mutate !src
    done;
    match parses_or_fails_typed !src with
    | None -> ()
    | Some e -> crashes := (!src, e) :: !crashes
  done;
  match !crashes with
  | [] -> ()
  | (src, e) :: _ ->
    Alcotest.failf "front end crashed on %d mutated inputs, e.g. %s on %S"
      (List.length !crashes) e src

(* Regression the token fuzzer found: a digit run too long for Int64
   used to escape the lexer as a bare Failure. *)
let test_lexer_int_overflow_is_typed () =
  Alcotest.(check bool) "overflow raises Lex_error" true
    (try
       ignore (L.tokenize "99999999999999999999999");
       false
     with L.Lex_error _ -> true)

(* ---- golden cases ---- *)

(* 20 pinned input/output pairs: 12 parse-and-print, 8 parse-and-eval.
   Unlike the roundtrip property these freeze the concrete shapes, so a
   precedence or printer regression shows up as a readable string diff. *)

let golden_parse_cases =
  [
    ( {|retrieve (filename) where "RISC" in keywords(file)|},
      {|retrieve (filename) where ("RISC" in keywords(file))|} );
    ("retrieve (a, b, c)", "retrieve (a, b, c)");
    ("define type tm", "define type tm");
    ("define   TYPE   Movie", "define type Movie");
    ( "retrieve (x) where a = 1 or b = 2 and c = 3",
      "retrieve (x) where ((a = 1) or ((b = 2) and (c = 3)))" );
    ( "retrieve (x) where not a = 1 and b = 2",
      "retrieve (x) where ((not (a = 1)) and (b = 2))" );
    ( "retrieve (x + 2 * y) where x - 1 < 10",
      "retrieve ((x + (2 * y))) where ((x - 1) < 10)" );
    ( {|retrieve (snow(file)/size(file)) where month_of(file) = "April"|},
      {|retrieve ((snow(file) / size(file))) where (month_of(file) = "April")|} );
    ("retrieve (f(x, y, 1.5))", "retrieve (f(x, y, 1.5))");
    ( "retrieve (x) where -5 + 3 < x",
      "retrieve (x) where (((0 - 5) + 3) < x)" );
    ( "retrieve (x) where a != 1 and a >= 2 and a <= 3",
      "retrieve (x) where ((a != 1) and ((a >= 2) and (a <= 3)))" );
    ( {|retrieve (x) where "a b" in s|},
      {|retrieve (x) where ("a b" in s)|} );
  ]

let golden_eval_cases =
  [
    ("x * 2 + 1", "21");
    ("x > 5 and x < 20", "true");
    ("not (x = 11)", "true");
    ({|"ell" in s|}, "true");
    ("snow(file) + size(file)", "907");
    ("x / 4", "2.5");
    ("missing + 1", "null");
    ("keywords(file)", {|{"RISC", "UNIX"}|});
  ]

let test_golden_parse () =
  List.iter
    (fun (src, want) ->
      Alcotest.(check string) src want (A.statement_to_string (P.parse_statement src)))
    golden_parse_cases

let test_golden_eval () =
  let r = R.create () in
  R.define_type r "tm";
  R.register r ~name:"snow" ~file_type:"tm" (fun _ -> V.Int 900L);
  R.register r ~name:"size" (fun _ -> V.Int 7L);
  R.register r ~name:"keywords" (fun _ -> V.List [ V.Str "RISC"; V.Str "UNIX" ]);
  let env = eval_env [ ("x", V.Int 10L); ("s", V.Str "hello"); ("file", V.Int 1L) ] in
  List.iter
    (fun (src, want) ->
      Alcotest.(check string) src want (V.to_string (E.eval r env (P.parse_expr src))))
    golden_eval_cases

let () =
  Alcotest.run "postquel"
    [
      ( "values",
        [
          Alcotest.test_case "equality" `Quick test_value_equality;
          Alcotest.test_case "comparison" `Quick test_value_compare;
          Alcotest.test_case "membership" `Quick test_value_member;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
          Alcotest.test_case "keyword case" `Quick test_lexer_case_insensitive_keywords;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper queries" `Quick test_parse_paper_queries;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "define type" `Quick test_parse_define_type;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "unary minus" `Quick test_parse_unary_minus;
        ] );
      ( "registry",
        [
          Alcotest.test_case "types" `Quick test_registry_types;
          Alcotest.test_case "typed dispatch" `Quick test_registry_typed_dispatch;
        ] );
      ( "eval",
        [
          Alcotest.test_case "basics" `Quick test_eval_basic;
          Alcotest.test_case "null semantics" `Quick test_eval_null_semantics;
          Alcotest.test_case "functions" `Quick test_eval_functions;
          Alcotest.test_case "typed mismatch" `Quick test_eval_typed_mismatch_is_null;
          Alcotest.test_case "list membership" `Quick test_eval_list_membership_from_function;
          Alcotest.test_case "mixed types degrade" `Quick test_eval_mixed_types_false_not_crash;
          Alcotest.test_case "not precedence" `Quick test_not_precedence;
          Alcotest.test_case "statement print/reparse" `Quick test_statement_print_reparse;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "token mutations" `Quick test_fuzz_token_mutations;
          Alcotest.test_case "char mutations" `Quick test_fuzz_char_mutations;
          Alcotest.test_case "int overflow typed" `Quick test_lexer_int_overflow_is_typed;
        ] );
      ( "golden",
        [
          Alcotest.test_case "parse" `Quick test_golden_parse;
          Alcotest.test_case "eval" `Quick test_golden_eval;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_eval_matches_model; prop_parser_roundtrip ] );
    ]
