(** Deterministic simulated clock.

    Every device and protocol model in this repository charges elapsed time
    to a [Clock.t] instead of sleeping.  Benchmarks then read the simulated
    elapsed time, which makes runs deterministic and lets a laptop reproduce
    the latency hierarchy of 1993-era hardware (NVRAM, a DEC RZ58 magnetic
    disk, a Sony WORM jukebox, 10 Mbit Ethernet).

    Time is kept in microseconds as an [int64] internally so that repeated
    accumulation is exact; the public interface speaks in float seconds. *)

type t

val create : unit -> t
(** A fresh clock at time 0, with empty charge accounts. *)

val now : t -> float
(** Current simulated time, in seconds since [create] (or last [reset]). *)

val advance : t -> ?account:string -> float -> unit
(** [advance clock ~account dt] moves simulated time forward by [dt]
    seconds (negative [dt] is an error) and charges [dt] to [account]
    (default ["unattributed"]).  Accounts are free-form labels such as
    ["disk.seek"] or ["net.transfer"]; they let benchmarks attribute where
    simulated time went. *)

val reset : t -> unit
(** Rewind to time 0 and clear all charge accounts and counters. *)

val charged : t -> string -> float
(** Total seconds charged to an account so far (0. if never charged). *)

val accounts : t -> (string * float) list
(** All accounts with their charges, sorted by label. *)

val tick : t -> string -> unit
(** Increment a named event counter (e.g. ["disk.io"]): counts events
    rather than time. *)

val ticks : t -> string -> int
(** Read a named event counter (0 if never ticked). *)

val counters : t -> (string * int) list
(** All event counters, sorted by label. *)

val timestamp : t -> int64
(** Current simulated time in integer microseconds.  Used as the commit
    timestamp source for the transaction system, so "time travel to time T"
    is exact. *)
