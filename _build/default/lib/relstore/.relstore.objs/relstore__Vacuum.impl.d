lib/relstore/vacuum.ml: Hashtbl Heap List Status_log Tid Xid
