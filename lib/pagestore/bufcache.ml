(* Packed integer page keys: (device id, segid, blkno) in one OCaml int.
   The hot path used to allocate a (string * int * int) tuple per access
   and hash a device-name string; interned device ids make the key a
   single boxed-free int.  16 bits of device id, 20 of segment id, 26 of
   block number — 62 bits, the most a 63-bit OCaml int can carry without
   going negative. *)
let devid_bits = 16
and segid_bits = 20
and blkno_bits = 26

let pack ~devid ~segid ~blkno =
  if devid lsr devid_bits <> 0 || segid lsr segid_bits <> 0 || blkno lsr blkno_bits <> 0
  then
    invalid_arg
      (Printf.sprintf "Bufcache: key out of range (devid %d, segid %d, blkno %d)" devid
         segid blkno);
  (devid lsl (segid_bits + blkno_bits)) lor (segid lsl blkno_bits) lor blkno

(* One (device, segment) — the granularity of flush_segment /
   invalidate_segment and of read-ahead run detection. *)
let pack_seg ~devid ~segid = (devid lsl segid_bits) lor segid

type tier = Hot | Cold

type entry = {
  key : int;
  dev : Device.t;
  segid : int;
  blkno : int;
  page : Page.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable tier : tier;
  mutable prefetched : bool; (* installed by read-ahead, not yet demanded *)
  mutable born : float; (* sim time of install / last demotion, gates promotion *)
  mutable lprev : entry option; (* intrusive LRU links; linked iff pins = 0 *)
  mutable lnext : entry option;
  mutable linked : bool;
}

(* Intrusive doubly-linked recency list: O(1) push/remove/pop, no
   allocation per touch.  Head = most recent, tail = eviction victim. *)
module Lru = struct
  type t = { mutable head : entry option; mutable tail : entry option; mutable len : int }

  let create () = { head = None; tail = None; len = 0 }

  let clear t =
    t.head <- None;
    t.tail <- None;
    t.len <- 0

  let push_front t e =
    e.lprev <- None;
    e.lnext <- t.head;
    (match t.head with Some h -> h.lprev <- Some e | None -> t.tail <- Some e);
    t.head <- Some e;
    e.linked <- true;
    t.len <- t.len + 1

  let remove t e =
    (match e.lprev with Some p -> p.lnext <- e.lnext | None -> t.head <- e.lnext);
    (match e.lnext with Some n -> n.lprev <- e.lprev | None -> t.tail <- e.lprev);
    e.lprev <- None;
    e.lnext <- None;
    e.linked <- false;
    t.len <- t.len - 1

  let pop_back t =
    match t.tail with
    | None -> None
    | Some e ->
      remove t e;
      Some e
end

(* The UNIX file system buffer cache sitting under the magnetic-disk
   device manager: "the file system buffer cache is a secondary buffer
   cache for magnetic disk pages in POSTGRES" (paper, "Cache
   Management").  Pages written back from the DBMS cache land here at
   memory speed and reach the platter asynchronously (POSTGRES 4.0.1 did
   not force them); reads that hit here cost a copy, not a seek.  Only
   magnetic-disk devices get this treatment — NVRAM and the jukebox
   device managers operate on raw devices.

   Same O(1) discipline as the main pool: an intrusive LRU over interned
   keys instead of the old full-table stamp scan per insertion. *)
module Os_cache = struct
  type node = {
    nkey : int;
    mutable nprev : node option;
    mutable nnext : node option;
  }

  type t = {
    cap : int;
    table : (int, node) Hashtbl.t;
    mutable head : node option;
    mutable tail : node option;
  }

  let create cap = { cap; table = Hashtbl.create 256; head = None; tail = None }
  let mem t k = Hashtbl.mem t.table k

  let unlink t n =
    (match n.nprev with Some p -> p.nnext <- n.nnext | None -> t.head <- n.nnext);
    (match n.nnext with Some x -> x.nprev <- n.nprev | None -> t.tail <- n.nprev);
    n.nprev <- None;
    n.nnext <- None

  let link_front t n =
    n.nnext <- t.head;
    (match t.head with Some h -> h.nprev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let touch t k =
    match Hashtbl.find_opt t.table k with
    | Some n ->
      unlink t n;
      link_front t n
    | None -> ()

  let add t k =
    if t.cap > 0 then
      match Hashtbl.find_opt t.table k with
      | Some n ->
        unlink t n;
        link_front t n
      | None ->
        if Hashtbl.length t.table >= t.cap then begin
          match t.tail with
          | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.nkey
          | None -> ()
        end;
        let n = { nkey = k; nprev = None; nnext = None } in
        Hashtbl.replace t.table k n;
        link_front t n

  let clear t =
    Hashtbl.reset t.table;
    t.head <- None;
    t.tail <- None
end

(* One 8 KB copy between address spaces on the era's CPU. *)
let os_copy_cost = 0.00025

(* Per-(device, segment) residency index doubling as read-ahead state:
   flush_segment / invalidate_segment touch only the segment's resident
   pages, and sequential-run detection is a couple of int compares. *)
type seg_state = {
  blocks : (int, entry) Hashtbl.t; (* blkno -> resident entry *)
  mutable ra_next : int; (* block an ascending run would touch next *)
  mutable ra_run : int; (* length of the current ascending run *)
  mutable ra_hint : bool; (* explicit sequential hint from a scan *)
  mutable cold_only : bool; (* archive tier: pages never promote to hot *)
}

type t = {
  cap : int;
  cold_cap : int; (* midpoint split: cold tier target size *)
  readahead_window : int;
  promote_age_s : float;
  table : (int, entry) Hashtbl.t;
  segs : (int, seg_state) Hashtbl.t; (* pack_seg -> state *)
  hot : Lru.t;
  cold : Lru.t;
  os_cache : Os_cache.t;
  mutable gets : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable evictions : int;
  mutable os_hits : int;
  mutable readaheads : int;
  mutable readahead_hits : int;
  mutable writeback_hook : (device:string -> segid:int -> blkno:int -> unit) option;
}

type stats = {
  s_gets : int;
  s_hits : int;
  s_misses : int;
  s_os_hits : int;
  s_writebacks : int;
  s_evictions : int;
  s_readaheads : int;
  s_readahead_hits : int;
}

let make ?(capacity = 300) ?(os_cache_blocks = 16384) ?(readahead_window = 8)
    ?(promote_age_s = 0.05) () =
  if capacity < 1 then invalid_arg "Bufcache.create: capacity must be >= 1";
  if readahead_window < 0 then invalid_arg "Bufcache.create: readahead_window < 0";
  {
    cap = capacity;
    (* InnoDB-style midpoint: 3/8 of the pool is the probationary cold
       tier a scan can churn; the rest holds pages that proved hot. *)
    cold_cap = max 1 (capacity * 3 / 8);
    readahead_window;
    promote_age_s;
    table = Hashtbl.create (2 * capacity);
    segs = Hashtbl.create 64;
    hot = Lru.create ();
    cold = Lru.create ();
    os_cache = Os_cache.create os_cache_blocks;
    gets = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
    evictions = 0;
    os_hits = 0;
    readaheads = 0;
    readahead_hits = 0;
    writeback_hook = None;
  }

(* The legacy per-instance counters stay authoritative; the unified
   registry sees them through live probes (latest-created cache wins,
   which is the one a single-system test or shell is driving). *)
let register_probes t =
  let p name f = Obs.Metrics.probe name f in
  p "cache.gets" (fun () -> t.gets);
  p "cache.hits" (fun () -> t.hits);
  p "cache.misses" (fun () -> t.misses);
  p "cache.os_hits" (fun () -> t.os_hits);
  p "cache.writebacks" (fun () -> t.writebacks);
  p "cache.evictions" (fun () -> t.evictions);
  p "cache.readaheads" (fun () -> t.readaheads);
  p "cache.readahead_hits" (fun () -> t.readahead_hits);
  p "cache.resident" (fun () -> Hashtbl.length t.table)

let create ?capacity ?os_cache_blocks ?readahead_window ?promote_age_s () =
  let t = make ?capacity ?os_cache_blocks ?readahead_window ?promote_age_s () in
  register_probes t;
  t

let set_writeback_hook t hook = t.writeback_hook <- hook

let capacity t = t.cap
let gets t = t.gets
let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
let evictions t = t.evictions
let os_hits t = t.os_hits
let readaheads t = t.readaheads
let readahead_hits t = t.readahead_hits
let resident t = Hashtbl.length t.table

let stats t =
  {
    s_gets = t.gets;
    s_hits = t.hits;
    s_misses = t.misses;
    s_os_hits = t.os_hits;
    s_writebacks = t.writebacks;
    s_evictions = t.evictions;
    s_readaheads = t.readaheads;
    s_readahead_hits = t.readahead_hits;
  }

let stats_to_string s =
  Printf.sprintf
    "cache_gets=%d cache_hits=%d cache_misses=%d os_hits=%d writebacks=%d evictions=%d \
     readaheads=%d readahead_hits=%d"
    s.s_gets s.s_hits s.s_misses s.s_os_hits s.s_writebacks s.s_evictions s.s_readaheads
    s.s_readahead_hits

let seg_state t dev ~segid =
  let skey = pack_seg ~devid:(Device.id dev) ~segid in
  match Hashtbl.find_opt t.segs skey with
  | Some s -> s
  | None ->
    let s =
      { blocks = Hashtbl.create 16; ra_next = -1; ra_run = 0; ra_hint = false;
        cold_only = false }
    in
    Hashtbl.replace t.segs skey s;
    s

let set_cold_only t dev ~segid = (seg_state t dev ~segid).cold_only <- true
let is_cold_only t dev ~segid = (seg_state t dev ~segid).cold_only

let os_cached_device dev = Device.kind dev = Device.Magnetic_disk

(* Store one copy on one device, with transient-fault retry.  For
   magnetic disks the page lands in the FS buffer cache (contents stored,
   platter write asynchronous); other kinds write through, charged. *)
let store_copy t dev ~segid ~blkno page =
  if os_cached_device dev then begin
    Resilient.write_block ~charged:false dev ~segid ~blkno page;
    Simclock.Clock.advance (Device.clock dev) ~account:"oscache.write" os_copy_cost;
    Os_cache.add t.os_cache (pack ~devid:(Device.id dev) ~segid ~blkno)
  end
  else Resilient.write_block ~charged:true dev ~segid ~blkno page

let write_back t e =
  if e.dirty then begin
    (match t.writeback_hook with
    | Some hook -> hook ~device:(Device.name e.dev) ~segid:e.segid ~blkno:e.blkno
    | None -> ());
    (* Dual writes: the mirror copy is stored even when the primary has
       failed permanently, so a degraded pair keeps accepting writes.  The
       write-back only fails when no copy lands.  Crash injection is not
       caught — a machine crash mid-write-back propagates as before. *)
    let primary_err =
      try
        store_copy t e.dev ~segid:e.segid ~blkno:e.blkno e.page;
        None
      with (Device.Media_failure _ | Device.Io_fault _) as exn -> Some exn
    in
    let mirror_landed =
      match Device.segment_mirror e.dev ~segid:e.segid with
      | None -> false
      | Some (mdev, msegid) -> (
        try
          store_copy t mdev ~segid:msegid ~blkno:e.blkno e.page;
          true
        with Device.Media_failure _ | Device.Io_fault _ | Invalid_argument _ -> false)
    in
    (match primary_err with
    | Some exn when not mirror_landed -> raise exn
    | _ -> ());
    e.dirty <- false;
    t.writebacks <- t.writebacks + 1;
    if Obs.on Obs.Cache then
      Obs.event Obs.Cache "cache.writeback"
        ~args:
          [
            ("dev", Obs.S (Device.name e.dev)); ("segid", Obs.I e.segid);
            ("blkno", Obs.I e.blkno);
          ]
        ()
  end

(* O(1) eviction: the cold tail is the victim; an all-hot pool falls back
   to the hot tail.  Pinned pages are never linked, so no scan and no
   victim filtering is needed. *)
let evict_one t =
  match
    match Lru.pop_back t.cold with Some _ as v -> v | None -> Lru.pop_back t.hot
  with
  | None -> failwith "Bufcache: all pages pinned, cannot evict"
  | Some e ->
    (* pop unlinked it already; write_back may raise (fault hooks), in
       which case the entry must still be gone from the pool. *)
    e.linked <- false;
    Hashtbl.remove t.table e.key;
    Hashtbl.remove (seg_state t e.dev ~segid:e.segid).blocks e.blkno;
    t.evictions <- t.evictions + 1;
    if Obs.on Obs.Cache then
      Obs.event Obs.Cache "cache.evict"
        ~args:
          [
            ("dev", Obs.S (Device.name e.dev)); ("segid", Obs.I e.segid);
            ("blkno", Obs.I e.blkno); ("dirty", Obs.I (if e.dirty then 1 else 0));
          ]
        ();
    write_back t e

let ensure_room t = while Hashtbl.length t.table >= t.cap do evict_one t done

let now_of dev = Simclock.Clock.now (Device.clock dev)

(* Keep the hot tier under its cap by demoting its tail to the cold
   front; the demoted page must re-prove itself (born is reset). *)
let rebalance t =
  while t.hot.Lru.len > t.cap - t.cold_cap do
    match Lru.pop_back t.hot with
    | Some e ->
      e.tier <- Cold;
      e.born <- now_of e.dev;
      Lru.push_front t.cold e
    | None -> ()
  done

let link_unpinned t e =
  Lru.push_front (match e.tier with Hot -> t.hot | Cold -> t.cold) e;
  if e.tier = Hot then rebalance t

let install t dev segid blkno page ~pins ~prefetched =
  ensure_room t;
  let key = pack ~devid:(Device.id dev) ~segid ~blkno in
  let e =
    {
      key;
      dev;
      segid;
      blkno;
      page;
      dirty = false;
      pins;
      tier = Cold;
      prefetched;
      born = now_of dev;
      lprev = None;
      lnext = None;
      linked = false;
    }
  in
  Hashtbl.replace t.table key e;
  Hashtbl.replace (seg_state t dev ~segid).blocks blkno e;
  if pins = 0 then link_unpinned t e;
  e

(* Read one block through the resilient layer, consulting the OS cache
   first for magnetic-disk devices: every page is checksum-verified
   (bitrot detected, never returned), transient faults retried, permanent
   ones failed over to the mirror. *)
let fetch_page t dev ~segid ~blkno ~key ~cont =
  if os_cached_device dev && Os_cache.mem t.os_cache key then begin
    t.os_hits <- t.os_hits + 1;
    Simclock.Clock.advance (Device.clock dev) ~account:"oscache.read" os_copy_cost;
    Os_cache.touch t.os_cache key;
    Resilient.read_block ~charged:false dev ~segid ~blkno
  end
  else begin
    let page = Resilient.read_block ~charged:true ~cont dev ~segid ~blkno in
    if os_cached_device dev then Os_cache.add t.os_cache key;
    page
  end

(* Sequential-run detection: an access at exactly the run's next block
   extends it; re-reading the block just read keeps it; anything else
   starts a fresh run and cancels any explicit hint. *)
let note_access seg blkno =
  if blkno = seg.ra_next then begin
    seg.ra_run <- seg.ra_run + 1;
    seg.ra_next <- blkno + 1
  end
  else if blkno <> seg.ra_next - 1 then begin
    seg.ra_run <- 1;
    seg.ra_next <- blkno + 1;
    seg.ra_hint <- false
  end

(* Devices with positioning cost get read-ahead; NVRAM reads are flat, so
   prefetching them buys nothing and only churns the pool. *)
let prefetchable_device dev =
  match Device.kind dev with
  | Device.Magnetic_disk | Device.Worm_jukebox -> true
  | Device.Nvram -> false

(* Batch-fetch the next window of the run through Resilient as the
   continuation of the foreground read: the per-request overhead is paid
   once (mirroring the track-at-a-time transfers the paper's disks did
   for free).  Only blocks that would cost a platter read are fetched —
   pages already resident or sitting in the OS cache are skipped.
   Prefetched pages enter the cold tier, so a misprediction is the next
   eviction victim, and speculative faults are swallowed (the foreground
   access did not need the block); only an injected machine crash
   propagates. *)
let prefetch t dev seg ~segid ~from =
  let devid = Device.id dev in
  let nblocks = Device.nblocks dev segid in
  let limit = min (from + t.readahead_window - 1) (nblocks - 1) in
  let fetched = ref 0 in
  (try
     for blkno = from to limit do
       (* Speculative work must never hit the all-pinned failure mode a
          demand fetch would be entitled to: stop the burst instead. *)
       if Hashtbl.length t.table >= t.cap && t.hot.Lru.len + t.cold.Lru.len = 0 then
         raise Exit;
       let key = pack ~devid ~segid ~blkno in
       if
         (not (Hashtbl.mem t.table key))
         && not (os_cached_device dev && Os_cache.mem t.os_cache key)
       then begin
         let page = Resilient.read_block ~charged:true ~cont:true dev ~segid ~blkno in
         if os_cached_device dev then Os_cache.add t.os_cache key;
         let (_ : entry) = install t dev segid blkno page ~pins:0 ~prefetched:true in
         t.readaheads <- t.readaheads + 1;
         incr fetched
       end
     done
   with Exit | Device.Media_failure _ | Device.Io_fault _ -> ());
  (* One burst event per run, carrying how many continuation reads the
     batch actually issued — the trace-checked read-ahead invariant. *)
  if !fetched > 0 && Obs.on Obs.Cache then
    Obs.event Obs.Cache "cache.readahead"
      ~args:
        [
          ("dev", Obs.S (Device.name dev)); ("segid", Obs.I segid);
          ("from", Obs.I from); ("blocks", Obs.I !fetched);
        ]
      ();
  seg.ra_next <- max seg.ra_next (limit + 1)

let get t dev ~segid ~blkno =
  (* Counter coherence: gets = hits + misses, and readahead_hits counts a
     {e subset} of hits (the demand access that first touches a
     prefetched page) — it is a prediction-accuracy annotation, not a
     third outcome, so it never double-counts against gets. *)
  t.gets <- t.gets + 1;
  let key = pack ~devid:(Device.id dev) ~segid ~blkno in
  match Hashtbl.find_opt t.table key with
  | Some e ->
    t.hits <- t.hits + 1;
    let was_prefetched = e.prefetched in
    if was_prefetched then begin
      t.readahead_hits <- t.readahead_hits + 1;
      e.prefetched <- false
    end;
    if Obs.on Obs.Cache then
      Obs.event Obs.Cache "cache.hit"
        ~args:
          [
            ("dev", Obs.S (Device.name dev)); ("segid", Obs.I segid);
            ("blkno", Obs.I blkno); ("ra", Obs.I (if was_prefetched then 1 else 0));
          ]
        ();
    if e.linked then Lru.remove (match e.tier with Hot -> t.hot | Cold -> t.cold) e;
    (* Scan resistance: promotion to the hot tier requires a re-touch
       after the page has aged past the install burst — the double-touch
       a single operation makes within microseconds does not count.
       (Promote only after unlinking from the old tier's list.) *)
    if
      e.tier = Cold
      && now_of dev -. e.born >= t.promote_age_s
      && not (seg_state t dev ~segid).cold_only
    then e.tier <- Hot;
    e.pins <- e.pins + 1;
    (let seg = seg_state t dev ~segid in
     note_access seg blkno);
    e.page
  | None ->
    t.misses <- t.misses + 1;
    if Obs.on Obs.Cache then
      Obs.event Obs.Cache "cache.miss"
        ~args:
          [
            ("dev", Obs.S (Device.name dev)); ("segid", Obs.I segid);
            ("blkno", Obs.I blkno);
          ]
        ();
    let seg = seg_state t dev ~segid in
    let page = fetch_page t dev ~segid ~blkno ~key ~cont:false in
    let e = install t dev segid blkno page ~pins:1 ~prefetched:false in
    (* Capture the hint before note_access: a hinted scan's first miss is
       rarely at the previous run's next block, and note_access would
       cancel the hint as "random" before it ever armed the prefetch. *)
    let hinted = seg.ra_hint in
    note_access seg blkno;
    if (hinted || seg.ra_run >= 2) && t.readahead_window > 0 && prefetchable_device dev
    then prefetch t dev seg ~segid ~from:(blkno + 1);
    e.page

let hint_sequential t dev ~segid = (seg_state t dev ~segid).ra_hint <- true

let find_entry t dev ~segid ~blkno =
  let key = pack ~devid:(Device.id dev) ~segid ~blkno in
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Bufcache: page %s/%d/%d not resident" (Device.name dev) segid blkno)

let unpin t dev ~segid ~blkno =
  let e = find_entry t dev ~segid ~blkno in
  if e.pins <= 0 then invalid_arg "Bufcache.unpin: page not pinned";
  e.pins <- e.pins - 1;
  if e.pins = 0 then link_unpinned t e

let mark_dirty t dev ~segid ~blkno =
  let e = find_entry t dev ~segid ~blkno in
  e.dirty <- true

let with_page t dev ~segid ~blkno f =
  let page = get t dev ~segid ~blkno in
  Fun.protect ~finally:(fun () -> unpin t dev ~segid ~blkno) (fun () -> f page)

let new_block t dev ~segid =
  let blkno = Device.allocate_block dev segid in
  let page = Page.create () in
  let (_ : entry) = install t dev segid blkno page ~pins:0 ~prefetched:false in
  blkno

(* Deterministic write-back order: (device name, segid, blkno).  Crash
   sweeps inject faults per write-back, so the order must not depend on
   hash-table layout (which varies across OCaml versions). *)
let flush t =
  let dirty =
    Hashtbl.fold (fun _ e acc -> if e.dirty then e :: acc else acc) t.table []
  in
  let dirty =
    List.sort
      (fun a b ->
        let c = String.compare (Device.name a.dev) (Device.name b.dev) in
        if c <> 0 then c
        else
          let c = compare a.segid b.segid in
          if c <> 0 then c else compare a.blkno b.blkno)
      dirty
  in
  List.iter (write_back t) dirty

let flush_segment t dev ~segid =
  let skey = pack_seg ~devid:(Device.id dev) ~segid in
  match Hashtbl.find_opt t.segs skey with
  | None -> ()
  | Some seg ->
    let dirty =
      Hashtbl.fold (fun _ e acc -> if e.dirty then e :: acc else acc) seg.blocks []
    in
    List.iter (write_back t) (List.sort (fun a b -> compare a.blkno b.blkno) dirty)

let invalidate_segment t dev ~segid =
  let skey = pack_seg ~devid:(Device.id dev) ~segid in
  match Hashtbl.find_opt t.segs skey with
  | None -> ()
  | Some seg ->
    Hashtbl.iter
      (fun _ e ->
        if e.linked then Lru.remove (match e.tier with Hot -> t.hot | Cold -> t.cold) e;
        Hashtbl.remove t.table e.key)
      seg.blocks;
    Hashtbl.remove t.segs skey

let crash t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.segs;
  Lru.clear t.hot;
  Lru.clear t.cold;
  Os_cache.clear t.os_cache
