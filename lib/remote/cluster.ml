module Fs = Invfs.Fs
module Errors = Invfs.Errors
module Link = Netsim.Link
module Clock = Simclock.Clock
module Rng = Simclock.Rng
module Device = Pagestore.Device

(* A fleet: one coordinator (namespace + placement map) plus N shard
   servers (chunk data), every machine a full Inversion stack — its own
   disk, buffer cache, database and Fs — sharing one simulated clock and
   one network cost model.

   Placement never travels on its own: shards learn the map (and renew
   their serving lease) exclusively from heartbeat replies, so a shard
   that cannot reach the coordinator soon cannot serve at all — the
   self-fence half of the no-split-brain argument.  The coordinator's
   half is patience: it declares a shard dead only [dead_after] seconds
   after its last heartbeat, and [dead_after] exceeds the serving lease
   by a full lease, so by the time a new epoch exists the old owner has
   provably stopped answering. *)

type member = { mid : int; server : Server.t }

type t = {
  clock : Clock.t;
  net : Netsim.t;
  nshards : int;
  nbuckets : int;
  hb_interval : float;
  serve_lease_s : float;
  dead_after : float;
  coord : member;
  shards : member array; (* index i-1 = shard i *)
  hb_links : Link.t array; (* shard i's heartbeat connection to the coordinator *)
  hb_asm : Wire.Assembly.t array;
  admin : Client.t array; (* coordinator's storage-network connection to shard i *)
  next_hb : float array;
  partitioned : bool array; (* heartbeat path cut (client links unaffected) *)
  mutable hb_rid : int64;
  mutable coord_sess : Fs.session option;
  mutable pumping : bool; (* re-entrancy guard: admin clients pump too *)
  mutable before_recovery : int -> unit;
  mutable after_recovery : int -> unit;
  mutable on_migrate : (oid:int64 -> bucket:int -> unit) option;
  mutable hb_sent : int;
  mutable migrations : int;
  mutable handoffs_completed : int;
  mutable drops_done : int;
}

let nshards t = t.nshards
let nbuckets t = t.nbuckets
let hb_interval t = t.hb_interval

let member_server t i =
  if i = 0 then t.coord.server
  else if i >= 1 && i <= t.nshards then t.shards.(i - 1).server
  else invalid_arg (Printf.sprintf "Cluster.member_server: no member %d" i)

let coord_role t =
  match Server.role t.coord.server with
  | Server.Coordinator c -> c
  | Server.Standalone | Server.Shard _ -> assert false

let shard_role t i =
  match Server.role t.shards.(i - 1).server with
  | Server.Shard r -> r
  | Server.Standalone | Server.Coordinator _ -> assert false

(* The same flat per-shard chunk namespace the server dispatch uses. *)
let shard_path oid = Printf.sprintf "/o%Ld" oid

(* {2 Durable placement}

   The map lives as a dotfile in the coordinator's own namespace, written
   through the recovery-tested Fs commit path: a coordinator crash
   between fence and handoff reloads epoch, ownership, the in-flight
   handoff list and the pending drop list, and simply resumes.  The
   writes run outside any client transaction; a transient lock conflict
   with concurrent metadata traffic just retries. *)

let placement_file = "/.placement"

let serialize (c : Server.coord_role) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "epoch %d\n" c.Server.c_epoch);
  Buffer.add_string b "owner";
  Array.iter (fun o -> Buffer.add_string b (Printf.sprintf " %d" o)) c.Server.c_owner;
  Buffer.add_char b '\n';
  List.iter
    (fun (bk, src, dst) -> Buffer.add_string b (Printf.sprintf "handoff %d %d %d\n" bk src dst))
    c.Server.c_handoff;
  List.iter
    (fun (bk, sh) -> Buffer.add_string b (Printf.sprintf "drop %d %d\n" bk sh))
    c.Server.c_drops;
  Buffer.contents b

let deserialize s (c : Server.coord_role) =
  c.Server.c_handoff <- [];
  c.Server.c_drops <- [];
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "epoch"; e ] -> c.Server.c_epoch <- int_of_string e
      | "owner" :: rest ->
        List.iteri
          (fun i o -> if i < Array.length c.Server.c_owner then c.Server.c_owner.(i) <- int_of_string o)
          rest
      | [ "handoff"; bk; src; dst ] ->
        c.Server.c_handoff <-
          c.Server.c_handoff @ [ (int_of_string bk, int_of_string src, int_of_string dst) ]
      | [ "drop"; bk; sh ] -> c.Server.c_drops <- c.Server.c_drops @ [ (int_of_string bk, int_of_string sh) ]
      | _ -> ())
    (String.split_on_char '\n' s)

let coord_session t =
  match t.coord_sess with
  | Some s -> s
  | None ->
    let s = Fs.new_session (Server.fs t.coord.server) in
    t.coord_sess <- Some s;
    s

let persist t =
  let c = coord_role t in
  let img = Bytes.of_string (serialize c) in
  let rec go k =
    match Fs.write_file (coord_session t) placement_file img with
    | () -> ()
    | exception Errors.Fs_error ((Errors.EAGAIN | Errors.EDEADLK | Errors.ETIMEDOUT), _) when k < 50 ->
      Clock.advance t.clock ~account:"cluster.placement" 0.002;
      go (k + 1)
  in
  go 0

let load_placement t =
  let c = coord_role t in
  (match Fs.read_whole_file (coord_session t) placement_file with
  | img -> deserialize (Bytes.to_string img) c
  | exception Errors.Fs_error (Errors.ENOENT, _) -> ());
  (* Fresh grace period: a rebooted coordinator gives every shard
     [dead_after] from now before declaring it dead — live ones
     heartbeat within [hb_interval] anyway. *)
  Hashtbl.reset c.Server.c_last_hb;
  let now = Clock.now t.clock in
  for i = 1 to t.nshards do
    Hashtbl.replace c.Server.c_last_hb i now
  done

(* {2 Heartbeats} *)

let send_heartbeats t =
  let now = Clock.now t.clock in
  Array.iteri
    (fun ix _ ->
      if now >= t.next_hb.(ix) then begin
        t.next_hb.(ix) <- now +. t.hb_interval;
        if not t.partitioned.(ix) then begin
          let epoch = (shard_role t (ix + 1)).Server.sh_epoch in
          t.hb_rid <- Int64.add t.hb_rid 1L;
          t.hb_sent <- t.hb_sent + 1;
          List.iter
            (fun f -> Link.send t.hb_links.(ix) Link.To_server f)
            (Wire.encode_request ~sid:0L ~rid:t.hb_rid (Wire.Heartbeat { shard = ix + 1; epoch }))
        end
      end)
    t.shards

let apply_placement t i (p : Wire.placement) =
  let r = shard_role t i in
  (* Never regress the epoch: a duplicated (late) heartbeat reply must
     not re-arm ownership a newer reply already revoked. *)
  if p.Wire.p_epoch >= r.Server.sh_epoch then begin
    r.Server.sh_epoch <- p.Wire.p_epoch;
    r.Server.sh_owner <- Array.copy p.Wire.p_owner;
    r.Server.sh_handoff <- p.Wire.p_handoff;
    r.Server.sh_lease_until <- Clock.now t.clock +. t.serve_lease_s
  end

let drain_hb t =
  Array.iteri
    (fun ix _ ->
      let link = t.hb_links.(ix) in
      let rec go () =
        match Link.recv link Link.To_client with
        | None -> ()
        | Some (frame, _poison) ->
          (if not t.partitioned.(ix) then
             match Wire.decode_header frame with
             | Some h -> (
               match Wire.Assembly.add t.hb_asm.(ix) h with
               | `Pending -> ()
               | `Complete payload -> (
                 match Wire.decode_reply payload with
                 | Some (Wire.Ok_reply { result = Wire.R_placement p; _ }) ->
                   apply_placement t (ix + 1) p
                 | Some _ | None -> ()))
             | None -> () (* corrupt frame: wire noise *));
          go ()
      in
      go ())
    t.shards

(* {2 Failure detection and fencing} *)

let live_shards t c ~except =
  let now = Clock.now t.clock in
  let live = ref [] in
  for j = t.nshards downto 1 do
    if j <> except then
      match Hashtbl.find_opt c.Server.c_last_hb j with
      | Some l when now -. l <= t.dead_after -> live := j :: !live
      | Some _ | None -> ()
  done;
  !live

let detect_failures t =
  let c = coord_role t in
  let now = Clock.now t.clock in
  for dead = 1 to t.nshards do
    match Hashtbl.find_opt c.Server.c_last_hb dead with
    | Some last
      when now -. last > t.dead_after && Array.exists (fun o -> o = dead) c.Server.c_owner -> (
      match live_shards t c ~except:dead with
      | [] -> () (* nowhere to fail over to; keep waiting *)
      | live ->
        (* Snapshot first: a new epoch becomes publishable (through
           heartbeat replies) the moment it exists in memory, so if the
           durable write below fails the whole fence must roll back —
           otherwise a coordinator crash could reload the old epoch and
           mint the same number for a different ownership map, defeating
           the exact-epoch fence. *)
        let epoch0 = c.Server.c_epoch in
        let owner0 = Array.copy c.Server.c_owner in
        let handoff0 = c.Server.c_handoff in
        let drops0 = c.Server.c_drops in
        let fences0 = c.Server.c_fence_events in
        c.Server.c_epoch <- c.Server.c_epoch + 1;
        c.Server.c_fence_events <- c.Server.c_fence_events + 1;
        let k = ref 0 in
        Array.iteri
          (fun b o ->
            if o = dead then begin
              let dst = List.nth live (!k mod List.length live) in
              incr k;
              c.Server.c_owner.(b) <- dst;
              (* If the bucket was already mid-handoff the data never
                 left the original source: keep that source, retarget
                 the destination (chained failovers) — and queue a drop
                 for the abandoned destination, whose partial copies
                 nothing else would ever garbage-collect. *)
              (match List.find_opt (fun (b', _, _) -> b' = b) c.Server.c_handoff with
              | Some (_, _, old_dst)
                when old_dst <> dst && not (List.mem (b, old_dst) c.Server.c_drops) ->
                c.Server.c_drops <- (b, old_dst) :: c.Server.c_drops
              | Some _ | None -> ());
              let src =
                match List.find_opt (fun (b', _, _) -> b' = b) c.Server.c_handoff with
                | Some (_, s0, _) -> s0
                | None -> dead
              in
              c.Server.c_handoff <-
                (b, src, dst) :: List.filter (fun (b', _, _) -> b' <> b) c.Server.c_handoff;
              (* A pending drop aimed at the shard that just became the
                 owner would discard the soon-to-be-authoritative copy
                 once the handoff commits: cancel it. *)
              c.Server.c_drops <-
                List.filter (fun (b', sh') -> not (b' = b && sh' = dst)) c.Server.c_drops
            end)
          c.Server.c_owner;
        (match persist t with
        | () -> ()
        | exception e ->
          c.Server.c_epoch <- epoch0;
          c.Server.c_owner <- owner0;
          c.Server.c_handoff <- handoff0;
          c.Server.c_drops <- drops0;
          c.Server.c_fence_events <- fences0;
          (* An Fs-level refusal (lock conflict past the retry budget,
             disk full, ...) just means no failover this pump — the next
             one retries from unchanged state.  Anything else (injected
             crash) propagates to the crash machinery. *)
          (match e with Errors.Fs_error _ -> () | _ -> raise e)))
    | Some _ | None -> ()
  done

(* {2 Handoff: fence -> copy -> commit -> drop}

   Every step is idempotent and the progress marker (the handoff entry,
   then the drop entry) is durable, so a crash of the coordinator — or
   of either shard — anywhere in the middle restarts cleanly: the copy
   phase re-sends whole files ([Migrate_in] overwrites), the commit is a
   single durable placement write, and the garbage drop retries until
   the stale copy is gone. *)

let oids_in_bucket t b =
  let sess = coord_session t in
  let ts = Relstore.Db.now (Fs.db (Server.fs t.coord.server)) in
  let acc = ref [] in
  let rec walk dir =
    let names = try Fs.readdir sess ~timestamp:ts dir with Errors.Fs_error _ -> [] in
    List.iter
      (fun name ->
        if String.length name > 0 && name.[0] <> '.' then begin
          let path = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
          match Fs.stat sess ~timestamp:ts path with
          | att ->
            if att.Invfs.Fileatt.ftype = "directory" then walk path
            else if Wire.bucket_of ~nbuckets:t.nbuckets att.Invfs.Fileatt.file = b then
              acc := att.Invfs.Fileatt.file :: !acc
          | exception Errors.Fs_error _ -> ()
        end)
      names
  in
  walk "/";
  !acc

let drive_handoff t =
  let c = coord_role t in
  match c.Server.c_handoff with
  | [] -> ()
  | entries ->
    List.iter
      (fun (b, src, dst) ->
        let epoch0 = c.Server.c_epoch in
        try
          let oids = oids_in_bucket t b in
          List.iter
            (fun oid ->
              (* A crash injected by the migrate hook (or a fence racing
                 a second failover) changes the epoch under us: abandon
                 this pass, the reloaded handoff list drives the redo. *)
              if c.Server.c_epoch <> epoch0 then raise Exit;
              let data = Client.c_fetch_chunks t.admin.(src - 1) ~oid in
              (match t.on_migrate with Some f -> f ~oid ~bucket:b | None -> ());
              if c.Server.c_epoch <> epoch0 then raise Exit;
              if data <> "" then begin
                Client.c_migrate_in t.admin.(dst - 1) ~oid ~epoch:epoch0 ~data;
                t.migrations <- t.migrations + 1
              end)
            oids;
          if c.Server.c_epoch = epoch0 then begin
            c.Server.c_handoff <- List.filter (fun (b', _, _) -> b' <> b) c.Server.c_handoff;
            if not (List.mem (b, src) c.Server.c_drops) then
              c.Server.c_drops <- (b, src) :: c.Server.c_drops;
            t.handoffs_completed <- t.handoffs_completed + 1;
            persist t
          end
        with
        | Exit -> ()
        | Errors.Fs_error _ -> () (* a side unreachable: retry next pump *))
      entries

let drive_drops t =
  let c = coord_role t in
  if c.Server.c_drops <> [] then begin
    let remaining =
      List.filter
        (fun (b, sh) ->
          match Client.c_drop_bucket t.admin.(sh - 1) ~bucket:b ~epoch:c.Server.c_epoch with
          | () ->
            t.drops_done <- t.drops_done + 1;
            false
          | exception Errors.Fs_error _ -> true)
        c.Server.c_drops
    in
    if List.length remaining <> List.length c.Server.c_drops then begin
      c.Server.c_drops <- remaining;
      persist t
    end
  end

(* {2 The cluster pump} *)

let pump t =
  if not t.pumping then begin
    t.pumping <- true;
    Fun.protect
      ~finally:(fun () -> t.pumping <- false)
      (fun () ->
        send_heartbeats t;
        Server.pump t.coord.server;
        drain_hb t;
        Array.iter (fun m -> Server.pump m.server) t.shards;
        detect_failures t;
        drive_handoff t;
        drive_drops t)
  end

let set_partitioned t ~shard on =
  if shard < 1 || shard > t.nshards then
    invalid_arg (Printf.sprintf "Cluster.set_partitioned: no shard %d" shard);
  t.partitioned.(shard - 1) <- on;
  if on then Link.clear t.hb_links.(shard - 1)

let crash_member t i = Server.crash_now (member_server t i)

let set_before_recovery t f = t.before_recovery <- f
let set_after_recovery t f = t.after_recovery <- f
let set_on_migrate t f = t.on_migrate <- f

(* {2 Construction} *)

let make_member ~clock ~mid =
  let switch = Pagestore.Switch.create ~clock in
  let _dev = Pagestore.Switch.add_device switch ~name:(Printf.sprintf "disk%d" mid) ~kind:Device.Magnetic_disk () in
  let db = Relstore.Db.create ~switch ~clock () in
  let fs = Fs.make db () in
  let server = Server.create ~fs () in
  { mid; server }

let create ~clock ~net ~rng ?(nshards = 2) ?(nbuckets = 16) ?(hb_interval = 0.5) ?serve_lease_s
    ?dead_after () =
  if nshards < 1 then invalid_arg "Cluster.create: nshards must be >= 1";
  if nbuckets < nshards then invalid_arg "Cluster.create: nbuckets must be >= nshards";
  let serve_lease_s =
    match serve_lease_s with Some x -> x | None -> 2. *. hb_interval
  in
  let dead_after = match dead_after with Some x -> x | None -> 2. *. serve_lease_s in
  if dead_after <= serve_lease_s then
    invalid_arg "Cluster.create: dead_after must exceed serve_lease_s (the fence ordering argument)";
  let coord = make_member ~clock ~mid:0 in
  let shards = Array.init nshards (fun ix -> make_member ~clock ~mid:(ix + 1)) in
  Server.set_role coord.server
    (Server.Coordinator
       {
         Server.c_nbuckets = nbuckets;
         c_lease_s = serve_lease_s;
         c_epoch = 1;
         c_owner = Array.init nbuckets (fun b -> 1 + (b mod nshards));
         c_handoff = [];
         c_drops = [];
         c_last_hb = Hashtbl.create 8;
         c_heartbeats = 0;
         c_fence_events = 0;
       });
  Array.iteri
    (fun ix m ->
      Server.set_role m.server
        (Server.Shard
           {
             Server.shard_id = ix + 1;
             nbuckets;
             sh_epoch = 0;
             sh_owner = [||];
             sh_handoff = [];
             sh_lease_until = 0.;
             sh_stale_rejects = 0;
           }))
    shards;
  let hb_links =
    Array.map
      (fun _ ->
        let l = Link.create net in
        Server.attach coord.server l;
        l)
      shards
  in
  let admin =
    Array.map
      (fun m ->
        let link = Link.create net in
        Client.connect ~server:m.server ~link ~rng:(Rng.split rng) ())
      shards
  in
  let t =
    {
      clock;
      net;
      nshards;
      nbuckets;
      hb_interval;
      serve_lease_s;
      dead_after;
      coord;
      shards;
      hb_links;
      hb_asm = Array.map (fun _ -> Wire.Assembly.create ()) hb_links;
      admin;
      next_hb = Array.make nshards 0.;
      partitioned = Array.make nshards false;
      hb_rid = 0L;
      coord_sess = None;
      pumping = false;
      before_recovery = (fun _ -> ());
      after_recovery = (fun _ -> ());
      on_migrate = None;
      hb_sent = 0;
      migrations = 0;
      handoffs_completed = 0;
      drops_done = 0;
    }
  in
  Server.set_on_crash coord.server (fun srv ->
      t.before_recovery 0;
      ignore (Fs.crash_and_recover (Server.fs srv) : Fs.recovery);
      t.coord_sess <- None;
      load_placement t;
      t.after_recovery 0);
  Array.iteri
    (fun ix m ->
      Server.set_on_crash m.server (fun srv ->
          t.before_recovery (ix + 1);
          ignore (Fs.crash_and_recover (Server.fs srv) : Fs.recovery);
          (* The reboot wiped the serving lease (the shard knows
             nothing); heartbeat immediately so the next pump re-arms
             it instead of waiting out the interval. *)
          t.next_hb.(ix) <- 0.;
          t.after_recovery (ix + 1)))
    shards;
  persist t;
  (* Bootstrap: one round of heartbeats arms every shard with epoch 1
     before any client traffic exists. *)
  pump t;
  pump t;
  t

let internal_links t =
  List.concat
    [
      Array.to_list (Array.map (fun l -> (0, l)) t.hb_links);
      List.mapi (fun ix c -> (ix + 1, Client.link c)) (Array.to_list t.admin);
    ]

(* {2 Composite connections}

   One client-side handle speaking to the whole fleet: metadata through
   the coordinator, data through the owning shard, routed by the cached
   placement map.  A [Wrong_shard] (ESTALE) or busy-handoff (EBUSY)
   refusal is definitively-not-executed: stand back half a heartbeat,
   pump the cluster (so detection, failover and handoff make progress),
   refresh the cache and retry — the client-visible blackout of a
   failover is this loop riding it out. *)

type conn = {
  cl : t;
  coord_c : Client.t;
  shard_c : Client.t array;
  mutable pl_epoch : int;
  mutable pl_owner : int array;
  mutable redirects : int;
}

let connect t ?config ?(on_link = fun _tag _link -> ()) ~rng () =
  let mk ~tag server =
    let link = Link.create t.net in
    on_link tag link;
    Client.connect ?config ~server ~link ~rng:(Rng.split rng) ()
  in
  let coord_c = mk ~tag:0 t.coord.server in
  let shard_c = Array.init t.nshards (fun ix -> mk ~tag:(ix + 1) t.shards.(ix).server) in
  { cl = t; coord_c; shard_c; pl_epoch = 0; pl_owner = [||]; redirects = 0 }

let coord conn = conn.coord_c
let conn_clients conn = conn.coord_c :: Array.to_list conn.shard_c
let redirects conn = conn.redirects

let refresh_placement conn =
  let p = Client.c_get_placement conn.coord_c in
  conn.pl_epoch <- p.Wire.p_epoch;
  conn.pl_owner <- p.Wire.p_owner

let max_redirects = 16

let rec with_shard conn ~oid ~attempt f =
  pump conn.cl;
  if conn.pl_epoch = 0 || Array.length conn.pl_owner = 0 then refresh_placement conn;
  let b = Wire.bucket_of ~nbuckets:conn.cl.nbuckets oid in
  let sh = conn.pl_owner.(b) in
  match f conn.shard_c.(sh - 1) conn.pl_epoch with
  | v -> v
  | exception Errors.Fs_error ((Errors.ESTALE | Errors.EBUSY), _) when attempt < max_redirects ->
    conn.redirects <- conn.redirects + 1;
    (* long enough for a heartbeat round (or one handoff step) to land *)
    Clock.advance conn.cl.clock ~account:"cluster.redirect" (0.5 *. conn.cl.hb_interval);
    pump conn.cl;
    (try refresh_placement conn with Errors.Fs_error _ -> ());
    with_shard conn ~oid ~attempt:(attempt + 1) f

let shard_write conn ~oid ~off ~data =
  with_shard conn ~oid ~attempt:0 (fun c epoch -> Client.c_shard_write c ~oid ~off ~data ~epoch)

let shard_read conn ~oid ~off ~len =
  with_shard conn ~oid ~attempt:0 (fun c epoch -> Client.c_shard_read c ~oid ~off ~len ~epoch)

let shard_truncate conn ~oid ~size =
  with_shard conn ~oid ~attempt:0 (fun c epoch -> Client.c_shard_truncate c ~oid ~size ~epoch)

(* {2 Authoritative durable reads (harness verification)} *)

let peek_data t ~oid =
  let c = coord_role t in
  let b = Wire.bucket_of ~nbuckets:t.nbuckets oid in
  (* Mid-handoff the source still holds the one complete, fenced copy;
     otherwise the owner does. *)
  let sh =
    match List.find_opt (fun (b', _, _) -> b' = b) c.Server.c_handoff with
    | Some (_, src, _) -> src
    | None -> c.Server.c_owner.(b)
  in
  let fs = Server.fs t.shards.(sh - 1).server in
  let sess = Fs.new_session fs in
  let ts = Relstore.Db.now (Fs.db fs) in
  let path = shard_path oid in
  if Fs.exists sess ~timestamp:ts path then
    Bytes.to_string (Fs.read_whole_file sess ~timestamp:ts path)
  else ""

(* {2 Counters} *)

type stats = {
  epoch : int;
  fence_events : int;
  heartbeats_sent : int;
  heartbeats_seen : int;
  stale_rejects : int;
  migrations : int;
  handoffs_completed : int;
  handoffs_pending : int;
  drops_pending : int;
  drops_done : int;
}

let stats t =
  let c = coord_role t in
  let stale = ref 0 in
  for i = 1 to t.nshards do
    stale := !stale + (shard_role t i).Server.sh_stale_rejects
  done;
  {
    epoch = c.Server.c_epoch;
    fence_events = c.Server.c_fence_events;
    heartbeats_sent = t.hb_sent;
    heartbeats_seen = c.Server.c_heartbeats;
    stale_rejects = !stale;
    migrations = t.migrations;
    handoffs_completed = t.handoffs_completed;
    handoffs_pending = List.length c.Server.c_handoff;
    drops_pending = List.length c.Server.c_drops;
    drops_done = t.drops_done;
  }

(* {2 Cross-shard audit}

   Gather the inputs {!Invfs.Fsck.cross_shard_audit} wants — the durable
   placement map, every oid the coordinator namespace references, and
   each shard's locally-resident chunk copies (a lock-free timestamped
   readdir of its flat [/o<oid>] store) — and run the placement walk. *)

let named_oids t =
  let sess = Fs.new_session (Server.fs t.coord.server) in
  let ts = Relstore.Db.now (Fs.db (Server.fs t.coord.server)) in
  let acc = ref [] in
  let rec walk dir =
    let names = try Fs.readdir sess ~timestamp:ts dir with Errors.Fs_error _ -> [] in
    List.iter
      (fun name ->
        if String.length name > 0 && name.[0] <> '.' then begin
          let path = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
          match Fs.stat sess ~timestamp:ts path with
          | att ->
            if att.Invfs.Fileatt.ftype = "directory" then walk path
            else acc := att.Invfs.Fileatt.file :: !acc
          | exception Errors.Fs_error _ -> ()
        end)
      names
  in
  walk "/";
  !acc

let resident_oids t k =
  let fs = Server.fs t.shards.(k - 1).server in
  let sess = Fs.new_session fs in
  let ts = Relstore.Db.now (Fs.db fs) in
  let names = try Fs.readdir sess ~timestamp:ts "/" with Errors.Fs_error _ -> [] in
  List.filter_map
    (fun name ->
      if String.length name > 1 && name.[0] = 'o' then
        Int64.of_string_opt (String.sub name 1 (String.length name - 1))
      else None)
    names

let cross_shard_audit t =
  let c = coord_role t in
  Invfs.Fsck.cross_shard_audit ~nshards:t.nshards
    ~owner:(Array.copy c.Server.c_owner)
    ~handoff:c.Server.c_handoff ~drops:c.Server.c_drops
    ~bucket_of:(fun oid -> Wire.bucket_of ~nbuckets:t.nbuckets oid)
    ~named:(named_oids t)
    ~resident:(List.init t.nshards (fun i -> (i + 1, Some (resident_oids t (i + 1)))))
