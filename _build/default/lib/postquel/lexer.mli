(** Tokenizer for the query language. *)

type token =
  | IDENT of string
  | STRING of string
  | INT of int64
  | FLOAT of float
  | LPAREN
  | RPAREN
  | COMMA
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | KW_RETRIEVE
  | KW_WHERE
  | KW_DEFINE
  | KW_TYPE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_IN
  | EOF

exception Lex_error of string * int
(** Message and byte offset. *)

val tokenize : string -> token list
(** Raises {!Lex_error} on malformed input (unterminated string, stray
    character).  Keywords are case-insensitive, identifiers keep case. *)

val token_to_string : token -> string
