(** Recursive-descent parser for the query language.

    Precedence, loosest first: [or], [and], [not], comparisons and [in],
    [+ -], [* /], unary minus.  Boolean operators follow the mathematical
    convention the paper's POSTQUEL used (or ≈ addition, and ≈
    multiplication). *)

exception Parse_error of string

val parse_statement : string -> Ast.statement
(** Parse one [retrieve] or [define type] statement.  Raises
    {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_expr : string -> Ast.expr
(** Parse a stand-alone expression (used by tests and the migration rules
    engine, whose predicates are query-language expressions). *)
