type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64: fast, well-distributed, trivially seedable. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  let u = Int64.shift_right_logical (next t) 11 in
  (* 53 significant bits, like a double's mantissa *)
  Int64.to_float u /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (next t)
