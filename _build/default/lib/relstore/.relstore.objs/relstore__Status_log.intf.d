lib/relstore/status_log.mli: Simclock Xid
