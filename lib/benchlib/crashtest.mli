(** Differential crash-recovery harness.

    Runs a randomized workload (create/write/append/truncate/rename/
    unlink/txn begin/commit/abort across several sessions) against the
    real {!Invfs.Fs} while a pure in-memory oracle tracks the committed
    state the file system must equal.  A seeded {!Faultsim} plan injects
    machine crashes at random device writes and transient I/O errors;
    after every crash the harness runs {!Invfs.Recovery.crash_and_recover}
    and then:

    - byte-compares the full recovered tree against the oracle's
      last-committed state,
    - replays time-travel ([As_of]) reads of remembered pre-crash
      committed instants,
    - requires the {!Invfs.Fsck} audit to be clean.

    Everything is driven from one {!Simclock.Rng} seed, so a failing seed
    reproduces the exact run (see DESIGN.md, "Reproducing a failing
    seed"). *)

type config = {
  ops : int;  (** workload length *)
  sessions : int;  (** concurrent client sessions *)
  crash_interval : int;  (** ops between forced boundary crashes *)
  snapshot_interval : int;  (** ops between remembered time-travel instants *)
  io_error_interval : int;  (** ops between scheduled transient I/O errors *)
  max_file_bytes : int;  (** soft cap on any one file's size *)
  max_dirs : int;  (** cap on directory count *)
  trace : bool;  (** print every op to stderr (reproducing a failing seed) *)
  mirrored : bool;  (** place the database on a mirrored device pair *)
  bitrot_interval : int;  (** ops between scheduled bitrot faults (0 = none) *)
  stuck_interval : int;  (** ops between scheduled stuck-block faults (0 = none) *)
  kill_mirror_at : int;  (** op index at which the mirror dies (0 = never) *)
  scrub_interval : int;  (** ops between background scrubber steps (0 = off) *)
  group_commit : int;
      (** group-commit batch size handed to {!Relstore.Db.create}
          (default 1 = off) — the [@creategap] sweep re-runs seeds with the
          commit pipeline on and demands oracle-identical outcomes *)
  flush_wait_us : int;  (** group-commit age bound (µs of simulated time) *)
  deferred_index : bool;  (** stage index inserts, apply at the batched force *)
  early_release : bool;  (** release locks before the commit force *)
}

val default_config : config
(** 200 ops, 3 sessions, boundary crash every 25 ops; no media decay. *)

val media_config : config
(** Mirrored pair under continuous bitrot and stuck blocks, with the
    background scrubber running — failover reads and scrub repairs must
    keep the run byte-identical to the oracle. *)

val media_kill_config : config
(** Mirrored pair whose secondary is killed mid-run after a full scrub:
    the primary carries the rest of the workload alone. *)

type outcome = {
  seed : int64;
  ops_attempted : int;
  ops_applied : int;
  crashes : int;  (** total recoveries (boundary + injected) *)
  injected_crashes : int;  (** crashes fired by the fault plan mid-op *)
  commits : int;  (** explicit p_commits that landed *)
  aborts : int;  (** explicit and forced aborts *)
  lock_skips : int;  (** ops skipped on EAGAIN/EDEADLK *)
  io_faults : int;  (** ops hit by injected transient I/O errors *)
  indexes_rebuilt : int;  (** B-tree indexes recovery had to rebuild *)
  time_travel_checks : int;
  full_verifies : int;
  media_events : int;
      (** media faults injected: stream-fired bitrot/stuck/dead plus
          latent rot planted directly for the scrubber *)
  scrub_repaired : int;  (** blocks the background scrubber healed *)
  cache_hits : int;  (** buffer-cache hits over the whole run *)
  cache_misses : int;
  cache_readaheads : int;  (** blocks prefetched by read-ahead *)
  cache_evictions : int;
  mismatches : string list;  (** empty = the run proved out *)
}

val outcome_to_string : outcome -> string

val run : ?config:config -> seed:int64 -> unit -> outcome
(** One full differential run on a fresh file system.  Deterministic:
    equal seeds (and configs) give equal outcomes. *)

val run_degraded :
  ?files:int ->
  ?group_commit:int ->
  ?deferred_index:bool ->
  ?early_release:bool ->
  seed:int64 ->
  unit ->
  string list
(** Directed degraded-mode scenario: files placed alternately on two
    {e unmirrored} devices, then one device dies.  Checks that files on
    the survivor stay byte-identical, files on the dead device fail with
    [EIO] (never silently misread), and that {!Invfs.Fsck} and
    {!Invfs.Recovery} report exactly the dead device's relations as
    degraded while auditing clean.  Returns mismatches (empty = passed). *)
