(* Simulated clock, PRNG and statistics. *)

let test_clock_advance () =
  let c = Simclock.Clock.create () in
  Alcotest.(check (float 1e-9)) "starts at zero" 0. (Simclock.Clock.now c);
  Simclock.Clock.advance c ~account:"a" 1.5;
  Simclock.Clock.advance c ~account:"b" 0.25;
  Simclock.Clock.advance c ~account:"a" 0.25;
  Alcotest.(check (float 1e-6)) "now" 2.0 (Simclock.Clock.now c);
  Alcotest.(check (float 1e-6)) "account a" 1.75 (Simclock.Clock.charged c "a");
  Alcotest.(check (float 1e-6)) "account b" 0.25 (Simclock.Clock.charged c "b");
  Alcotest.(check (float 1e-6)) "unknown account" 0. (Simclock.Clock.charged c "zzz")

let test_clock_negative () =
  let c = Simclock.Clock.create () in
  Alcotest.check_raises "negative dt" (Invalid_argument "Clock.advance: negative duration")
    (fun () -> Simclock.Clock.advance c (-1.))

let test_clock_reset () =
  let c = Simclock.Clock.create () in
  Simclock.Clock.advance c 5.;
  Simclock.Clock.tick c "ev";
  Simclock.Clock.reset c;
  Alcotest.(check (float 1e-9)) "reset time" 0. (Simclock.Clock.now c);
  Alcotest.(check int) "reset counters" 0 (Simclock.Clock.ticks c "ev");
  Alcotest.(check int) "no accounts" 0 (List.length (Simclock.Clock.accounts c))

let test_clock_timestamp () =
  let c = Simclock.Clock.create () in
  Simclock.Clock.advance c 1.0;
  Alcotest.(check int64) "1s = 1e6 µs" 1_000_000L (Simclock.Clock.timestamp c);
  Simclock.Clock.advance c 0.000001;
  Alcotest.(check int64) "µs precision" 1_000_001L (Simclock.Clock.timestamp c)

let test_clock_ticks () =
  let c = Simclock.Clock.create () in
  Simclock.Clock.tick c "x";
  Simclock.Clock.tick c "x";
  Simclock.Clock.tick c "y";
  Alcotest.(check int) "x twice" 2 (Simclock.Clock.ticks c "x");
  Alcotest.(check int) "y once" 1 (Simclock.Clock.ticks c "y");
  Alcotest.(check (list (pair string int))) "counters sorted"
    [ ("x", 2); ("y", 1) ]
    (Simclock.Clock.counters c)

let test_rng_determinism () =
  let a = Simclock.Rng.create 7L and b = Simclock.Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Simclock.Rng.next a) (Simclock.Rng.next b)
  done

let test_rng_bounds () =
  let rng = Simclock.Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Simclock.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 1000 do
    let f = Simclock.Rng.float rng 3.5 in
    if f < 0. || f >= 3.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_shuffle_permutes () =
  let rng = Simclock.Rng.create 3L in
  let a = Array.init 100 (fun i -> i) in
  Simclock.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_rng_split_independent () =
  let rng = Simclock.Rng.create 11L in
  let child = Simclock.Rng.split rng in
  let v1 = Simclock.Rng.next child in
  let v2 = Simclock.Rng.next rng in
  Alcotest.(check bool) "streams differ" true (v1 <> v2)

let test_stats_summary () =
  let s = Simclock.Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "n" 5 s.n;
  Alcotest.(check (float 1e-9)) "mean" 3. s.mean;
  Alcotest.(check (float 1e-9)) "min" 1. s.min;
  Alcotest.(check (float 1e-9)) "max" 5. s.max;
  Alcotest.(check (float 1e-9)) "p50" 3. s.p50;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.stddev

let test_stats_singleton () =
  let s = Simclock.Stats.summarize [ 42. ] in
  Alcotest.(check (float 1e-9)) "mean" 42. s.mean;
  Alcotest.(check (float 1e-9)) "stddev" 0. s.stddev;
  Alcotest.(check (float 1e-9)) "p99" 42. s.p99

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Simclock.Stats.summarize []))

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"rng int covers range" ~count:20
    QCheck.(int_range 2 50)
    (fun bound ->
      let rng = Simclock.Rng.create (Int64.of_int bound) in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Simclock.Rng.int rng bound) <- true
      done;
      Array.for_all Fun.id seen)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let a = Array.of_list xs in
      Array.sort compare a;
      let p q = Simclock.Stats.percentile a q in
      p 0.1 <= p 0.5 && p 0.5 <= p 0.9 && p 0.9 <= p 1.0)

let () =
  Alcotest.run "simclock"
    [
      ( "clock",
        [
          Alcotest.test_case "advance and accounts" `Quick test_clock_advance;
          Alcotest.test_case "negative advance rejected" `Quick test_clock_negative;
          Alcotest.test_case "reset" `Quick test_clock_reset;
          Alcotest.test_case "timestamp precision" `Quick test_clock_timestamp;
          Alcotest.test_case "event counters" `Quick test_clock_ticks;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_determinism;
          Alcotest.test_case "bounds respected" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rng_int_uniformish; prop_percentile_monotone ] );
    ]
