(** Chunk compression (LZSS with hash-chain matching).

    The paper's compressed-chunk extension needs a real, lossless,
    self-contained compressor; we implement one from scratch rather than
    depending on zlib.  Format: a token stream where a control byte
    [0x00–0x7F] introduces a literal run of that many + 1 bytes, and
    [0x80 | (len - min_match)] introduces a back-reference of [len]
    (4–131) bytes at a little-endian 16-bit distance (1–65535).  Greedy
    matching with 4-byte hash chains.

    Inversion compresses each chunk independently, so random access stays
    cheap: the chunk index records compressed and uncompressed sizes and
    only the touched chunk is ever decompressed. *)

val compress : bytes -> bytes
(** Never fails; incompressible data grows by at most ~1/128 plus one
    byte. *)

val decompress : bytes -> bytes
(** Raises [Invalid_argument] on a corrupt stream. *)

val ratio : bytes -> float
(** [compressed length / original length] (1.0 for empty input). *)

val worst_case : int -> int
(** Maximum compressed size for an input of the given length. *)
