(** Page-based B+tree index.

    "In order to speed up seeks on files, Inversion maintains a Btree index
    on the chunk number attribute" (paper).  The same structure indexes the
    [naming] table.  Nodes are 8 KB pages living on a device segment and
    accessed through the shared buffer cache, so index maintenance costs
    real (simulated) I/O — interleaving B-tree writes with heap writes is
    exactly the overhead the paper measures in Figure 3.

    Keys are fixed-width byte strings (see {!Key}) compared
    lexicographically.  Values are 64-bit payloads (encoded {!Relstore.Tid}
    s).  Duplicate keys are supported by suffixing the value onto the key
    internally, so each (key, value) pair is unique and historical versions
    of the same chunk coexist in the index — "an index on all of the
    file's available data, including both old and current blocks". *)

type t

val create :
  cache:Pagestore.Bufcache.t -> device:Pagestore.Device.t -> klen:int -> t
(** A fresh empty tree on a new segment.  [klen] between 1 and 64 bytes. *)

val attach :
  cache:Pagestore.Bufcache.t -> device:Pagestore.Device.t -> segid:int -> t
(** Re-open a tree that survived a crash (reads the meta page). *)

val crash : t -> unit
(** Forget volatile per-tree state (the cached entry count) after a
    simulated machine crash.  The durable pages are untouched; the count
    is recounted from the leaves on demand, as after {!attach}. *)

val reinit : t -> unit
(** Reset the tree to empty in place: the meta page is pointed at a fresh
    empty leaf on the same segment, so the segment id stays valid for
    anyone holding it.  Old nodes are abandoned in the segment (accepted
    leak; used only by crash recovery to rebuild a damaged index before
    re-inserting entries from the heap). *)

val klen : t -> int
val segid : t -> int
val device : t -> Pagestore.Device.t

val tag : t -> string
(** Stable name for this tree ("device:segid") — the [tree] field of
    logical index intents, resolved back at REDO time. *)

val count : t -> int
(** Number of (key, value) entries, including staged (deferred) ones. *)

val pending_count : t -> int
(** Entries staged in the deferred overlay, not yet applied. *)

val height : t -> int
(** 1 for a leaf-only tree. *)

val insert : t -> key:string -> value:int64 -> unit
(** Add an entry.  Inserting an exact (key, value) duplicate is a no-op.
    Raises [Invalid_argument] if [key] is not [klen] bytes. *)

val insert_logged : t -> Relstore.Txn.t -> key:string -> value:int64 -> unit
(** Transactional insert.  When the transaction's manager defers index
    inserts, the entry is staged in the tree's volatile overlay (visible
    to every read through this handle) and a logical intent is logged
    for REDO; the overlay is applied as one sorted run at the next flush
    point.  Otherwise identical to {!insert}. *)

val bulk_insert : t -> (string * int64) list -> unit
(** Sorted-run bulk insert: sort the batch, then descend once per
    touched leaf instead of once per entry.  Exact duplicates (within
    the batch or against the tree) are dropped.  Equivalent to folding
    {!insert} over the batch. *)

val apply_pending : t -> unit
(** Apply and empty the deferred overlay as a sorted run (normally run
    by the flush-point hook registered by {!insert_logged}). *)

val delete : t -> key:string -> value:int64 -> bool
(** Remove the exact entry; [false] if absent.  Deletion is lazy (no node
    merging) — the vacuum cleaner rebuilds indexes when it compacts. *)

val lookup : t -> key:string -> int64 list
(** All values stored under exactly [key], ascending. *)

val scan_range : t -> lo:string -> hi:string -> (string -> int64 -> unit) -> unit
(** Visit every entry with [lo <= key <= hi] in key order.  The callback
    may raise to stop early. *)

val iter : t -> (string -> int64 -> unit) -> unit
(** Whole-tree scan in key order. *)

val min_entry : t -> (string * int64) option
val max_entry : t -> (string * int64) option

val check_invariants : t -> (unit, string) result
(** Structural audit: node sort order, separator correctness, leaf-chain
    order, entry count.  Used by tests and the property suite. *)
