module H = Relstore.Heap

type t = {
  db : Relstore.Db.t;
  oid : int64;
  heap : H.t;
  index : Index.Btree.t;
  compressed : bool;
  mutable write_through : bool;
}

let relname oid = Printf.sprintf "inv%Ld" oid

let create_named db ~oid ~relname ~device ~compressed =
  let heap = Relstore.Db.create_relation db ~name:relname ~device () in
  let index =
    Index.Btree.create ~cache:(Relstore.Db.cache db) ~device:(H.device heap) ~klen:8
  in
  { db; oid; heap; index; compressed; write_through = false }

let create db ~oid ~device ~compressed =
  create_named db ~oid ~relname:(relname oid) ~device ~compressed

let attach db ~oid ~index_segid ~compressed =
  let heap = Relstore.Db.find_relation db (relname oid) in
  let index =
    Index.Btree.attach ~cache:(Relstore.Db.cache db) ~device:(H.device heap)
      ~segid:index_segid
  in
  { db; oid; heap; index; compressed; write_through = false }

let set_write_through t v = t.write_through <- v
let write_through t = t.write_through

let oid t = t.oid
let heap t = t.heap
let index_segid t = Index.Btree.segid t.index
let device_name t = Pagestore.Device.name (H.device t.heap)
let is_compressed t = t.compressed

let decode_chunk payload =
  let c = Chunk.decode payload in
  if c.Chunk.compressed then begin
    let data = Compress.decompress c.Chunk.data in
    if Bytes.length data <> c.Chunk.uncompressed_len then
      invalid_arg "Inv_file: compressed chunk length mismatch";
    data
  end
  else c.Chunk.data

let historical = function Relstore.Snapshot.As_of _ -> true | _ -> false

(* All indexed versions of a chunk, newest (highest TID) first: the
   common case — reading or replacing the current version — then finds it
   on the first probe instead of walking the whole version chain. *)
let versions_newest_first t ~chunkno =
  List.rev (Index.Btree.lookup t.index ~key:(Index.Key.of_int64 chunkno))

(* The visible version of a chunk: try the index first (all non-vacuumed
   versions are indexed); for historical snapshots fall back to scanning
   the heap + archive when vacuuming removed the version we need. *)
let find_visible t snap ~chunkno =
  let via_index =
    let hit = ref None in
    (try
       List.iter
         (fun v ->
           match H.fetch t.heap snap (Relstore.Tid.decode v) with
           | Some r ->
             hit := Some r.H.payload;
             raise Exit
           | None -> ())
         (versions_newest_first t ~chunkno)
     with Exit -> ());
    !hit
  in
  match via_index with
  | Some _ as hit -> hit
  | None ->
    if historical snap then begin
      let hit = ref None in
      H.scan t.heap snap (fun r ->
          if (Chunk.decode r.H.payload).Chunk.chunkno = chunkno then
            hit := Some r.H.payload);
      !hit
    end
    else None

let read_chunk t snap ~chunkno =
  Option.map decode_chunk (find_visible t snap ~chunkno)

let encode_for_storage t ~chunkno data =
  let plain = Chunk.make_plain ~chunkno data in
  if not t.compressed then plain
  else begin
    let packed = Compress.compress data in
    if Bytes.length packed < Bytes.length data then
      Chunk.make_compressed ~chunkno ~uncompressed_len:(Bytes.length data) packed
    else plain
  end

let write_chunk t txn ~chunkno data =
  if Bytes.length data > Chunk.capacity then
    invalid_arg "Inv_file.write_chunk: data exceeds chunk capacity";
  let snap = Relstore.Txn.snapshot txn in
  (* stamp the currently visible version dead, if any *)
  (try
     List.iter
       (fun v ->
         let tid = Relstore.Tid.decode v in
         match H.fetch t.heap snap tid with
         | Some _ ->
           H.delete t.heap txn tid;
           raise Exit
         | None -> ())
       (versions_newest_first t ~chunkno)
   with Exit -> ());
  let payload = Chunk.encode (encode_for_storage t ~chunkno data) in
  let tid = H.insert t.heap txn ~oid:t.oid payload in
  Index.Btree.insert t.index ~key:(Index.Key.of_int64 chunkno)
    ~value:(Relstore.Tid.encode tid);
  (* POSTGRES interleaved B-tree page writes with data file writes --
     the head movement Figure 3 blames for Inversion's slower creates.
     Benchmarks can ablate this with [set_write_through]. *)
  if t.write_through then
    Pagestore.Bufcache.flush_segment (Relstore.Db.cache t.db) (H.device t.heap)
      ~segid:(Index.Btree.segid t.index)

let delete_chunks_from t txn ~chunkno =
  let snap = Relstore.Txn.snapshot txn in
  let doomed = ref [] in
  Index.Btree.scan_range t.index ~lo:(Index.Key.of_int64 chunkno)
    ~hi:(Index.Key.max_key ~width:8)
    (fun _ v ->
      let tid = Relstore.Tid.decode v in
      match H.fetch t.heap snap tid with
      | Some _ -> doomed := tid :: !doomed
      | None -> ());
  List.iter (fun tid -> H.delete t.heap txn tid) !doomed

let iter_chunks t snap f =
  H.scan t.heap snap (fun r ->
      let c = Chunk.decode r.H.payload in
      f c.Chunk.chunkno (decode_chunk r.H.payload))

let copy_all_versions_to src dst =
  H.scan_raw src.heap (fun r ->
      let c = Chunk.decode r.H.payload in
      let tid = H.append_raw dst.heap ~oid:r.H.oid ~xmin:r.H.xmin ~xmax:r.H.xmax r.H.payload in
      Index.Btree.insert dst.index ~key:(Index.Key.of_int64 c.Chunk.chunkno)
        ~value:(Relstore.Tid.encode tid))

let index_maintenance_on_vacuum t (r : H.record) =
  let c = Chunk.decode r.H.payload in
  ignore
    (Index.Btree.delete t.index ~key:(Index.Key.of_int64 c.Chunk.chunkno)
       ~value:(Relstore.Tid.encode r.H.tid)
      : bool)

let drop t =
  let cache = Relstore.Db.cache t.db in
  let dev = H.device t.heap in
  Pagestore.Bufcache.invalidate_segment cache dev ~segid:(Index.Btree.segid t.index);
  Pagestore.Device.drop_segment dev (Index.Btree.segid t.index);
  Relstore.Db.drop_relation t.db (relname t.oid)

let stored_bytes t snap =
  let total = ref 0 in
  H.scan t.heap snap (fun r ->
      let c = Chunk.decode r.H.payload in
      total := !total + Bytes.length c.Chunk.data);
  !total
