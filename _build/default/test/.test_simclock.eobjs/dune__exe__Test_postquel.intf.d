test/test_postquel.mli:
