lib/core/naming.ml: Bytes Index List Relstore String
