type token =
  | IDENT of string
  | STRING of string
  | INT of int64
  | FLOAT of float
  | LPAREN
  | RPAREN
  | COMMA
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | KW_RETRIEVE
  | KW_WHERE
  | KW_DEFINE
  | KW_TYPE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_IN
  | EOF

exception Lex_error of string * int

let keyword_of = function
  | "retrieve" -> Some KW_RETRIEVE
  | "where" -> Some KW_WHERE
  | "define" -> Some KW_DEFINE
  | "type" -> Some KW_TYPE
  | "and" -> Some KW_AND
  | "or" -> Some KW_OR
  | "not" -> Some KW_NOT
  | "in" -> Some KW_IN
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match keyword_of (String.lowercase_ascii word) with
      | Some kw -> emit kw
      | None -> emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else
        (* Int64.of_string raises a bare Failure on overflow (found by
           the parser fuzzer); keep the typed-error contract. *)
        let digits = String.sub src start (!i - start) in
        (match Int64.of_string_opt digits with
        | Some v -> emit (INT v)
        | None -> raise (Lex_error ("integer literal out of range", start)))
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match src.[!i] with
        | '"' -> closed := true
        | '\\' when !i + 1 < n ->
          incr i;
          Buffer.add_char buf src.[!i]
        | ch -> Buffer.add_char buf ch);
        incr i
      done;
      if not !closed then raise (Lex_error ("unterminated string", start));
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "!=" | "<>" ->
        emit NE;
        i := !i + 2
      | "<=" ->
        emit LE;
        i := !i + 2
      | ">=" ->
        emit GE;
        i := !i + 2
      | _ ->
        (match c with
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | ',' -> emit COMMA
        | '=' -> emit EQ
        | '<' -> emit LT
        | '>' -> emit GT
        | '+' -> emit PLUS
        | '-' -> emit MINUS
        | '*' -> emit STAR
        | '/' -> emit SLASH
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !i)));
        incr i
    end
  done;
  List.rev (EOF :: !tokens)

let token_to_string = function
  | IDENT s -> Printf.sprintf "IDENT(%s)" s
  | STRING s -> Printf.sprintf "STRING(%S)" s
  | INT i -> Printf.sprintf "INT(%Ld)" i
  | FLOAT f -> Printf.sprintf "FLOAT(%g)" f
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | EQ -> "="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | KW_RETRIEVE -> "retrieve"
  | KW_WHERE -> "where"
  | KW_DEFINE -> "define"
  | KW_TYPE -> "type"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_NOT -> "not"
  | KW_IN -> "in"
  | EOF -> "<eof>"
