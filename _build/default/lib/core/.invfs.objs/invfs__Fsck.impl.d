lib/core/fsck.ml: Bytes Chunk Fileatt Fs Int64 Inv_file List Naming Printf Relstore String
