(* B+tree: unit tests plus qcheck properties on structural invariants. *)

let make_tree ?(klen = 8) () =
  let clock = Simclock.Clock.create () in
  let device =
    Pagestore.Device.create ~clock ~name:"d" ~kind:Pagestore.Device.Magnetic_disk ()
  in
  let cache = Pagestore.Bufcache.create ~capacity:64 () in
  Index.Btree.create ~cache ~device ~klen

let check_ok tree =
  match Index.Btree.check_invariants tree with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violation: %s" msg

let key i = Index.Key.of_int i

let test_empty () =
  let t = make_tree () in
  Alcotest.(check int) "count" 0 (Index.Btree.count t);
  Alcotest.(check int) "height" 1 (Index.Btree.height t);
  Alcotest.(check (list int64)) "lookup" [] (Index.Btree.lookup t ~key:(key 1));
  check_ok t

let test_insert_lookup () =
  let t = make_tree () in
  for i = 0 to 99 do
    Index.Btree.insert t ~key:(key i) ~value:(Int64.of_int (i * 10))
  done;
  Alcotest.(check int) "count" 100 (Index.Btree.count t);
  for i = 0 to 99 do
    Alcotest.(check (list int64))
      (Printf.sprintf "lookup %d" i)
      [ Int64.of_int (i * 10) ]
      (Index.Btree.lookup t ~key:(key i))
  done;
  check_ok t

let test_duplicate_keys () =
  let t = make_tree () in
  List.iter
    (fun v -> Index.Btree.insert t ~key:(key 7) ~value:v)
    [ 3L; 1L; 2L ];
  Alcotest.(check (list int64)) "dups ascending" [ 1L; 2L; 3L ]
    (Index.Btree.lookup t ~key:(key 7));
  (* exact duplicate is a no-op *)
  Index.Btree.insert t ~key:(key 7) ~value:2L;
  Alcotest.(check int) "count" 3 (Index.Btree.count t);
  check_ok t

let test_split_many () =
  let t = make_tree () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    Index.Btree.insert t ~key:(key i) ~value:(Int64.of_int i)
  done;
  Alcotest.(check int) "count" n (Index.Btree.count t);
  Alcotest.(check bool) "height grew" true (Index.Btree.height t > 1);
  check_ok t;
  (* spot-check lookups on both edges and middle *)
  List.iter
    (fun i ->
      Alcotest.(check (list int64))
        (Printf.sprintf "lookup %d" i)
        [ Int64.of_int i ]
        (Index.Btree.lookup t ~key:(key i)))
    [ 0; 1; n / 2; n - 2; n - 1 ]

let test_reverse_and_random_order () =
  let t = make_tree () in
  let rng = Simclock.Rng.create 42L in
  let order = Array.init 5000 (fun i -> i) in
  Simclock.Rng.shuffle rng order;
  Array.iter (fun i -> Index.Btree.insert t ~key:(key i) ~value:(Int64.of_int i)) order;
  check_ok t;
  let seen = ref [] in
  Index.Btree.iter t (fun k _ -> seen := Index.Key.to_int64 k :: !seen);
  let sorted = List.rev !seen in
  Alcotest.(check int) "all present" 5000 (List.length sorted);
  let rec ascending = function
    | a :: (b :: _ as rest) -> Int64.compare a b < 0 && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "iter sorted" true (ascending sorted)

let test_scan_range () =
  let t = make_tree () in
  for i = 0 to 999 do
    Index.Btree.insert t ~key:(key i) ~value:(Int64.of_int i)
  done;
  let acc = ref [] in
  Index.Btree.scan_range t ~lo:(key 100) ~hi:(key 110) (fun _ v -> acc := v :: !acc);
  Alcotest.(check (list int64))
    "range 100..110"
    (List.init 11 (fun i -> Int64.of_int (100 + i)))
    (List.rev !acc)

let test_delete () =
  let t = make_tree () in
  for i = 0 to 999 do
    Index.Btree.insert t ~key:(key i) ~value:(Int64.of_int i)
  done;
  Alcotest.(check bool) "delete present" true
    (Index.Btree.delete t ~key:(key 500) ~value:500L);
  Alcotest.(check bool) "delete absent" false
    (Index.Btree.delete t ~key:(key 500) ~value:500L);
  Alcotest.(check (list int64)) "gone" [] (Index.Btree.lookup t ~key:(key 500));
  Alcotest.(check int) "count" 999 (Index.Btree.count t);
  check_ok t

let test_min_max () =
  let t = make_tree () in
  Alcotest.(check bool) "empty min" true (Index.Btree.min_entry t = None);
  List.iter
    (fun i -> Index.Btree.insert t ~key:(key i) ~value:(Int64.of_int i))
    [ 42; 7; 99; 13 ];
  (match Index.Btree.min_entry t with
  | Some (k, _) -> Alcotest.(check int64) "min" 7L (Index.Key.to_int64 k)
  | None -> Alcotest.fail "min missing");
  match Index.Btree.max_entry t with
  | Some (k, _) -> Alcotest.(check int64) "max" 99L (Index.Key.to_int64 k)
  | None -> Alcotest.fail "max missing"

let test_attach () =
  let clock = Simclock.Clock.create () in
  let device =
    Pagestore.Device.create ~clock ~name:"d" ~kind:Pagestore.Device.Magnetic_disk ()
  in
  let cache = Pagestore.Bufcache.create ~capacity:64 () in
  let t = Index.Btree.create ~cache ~device ~klen:12 in
  for i = 0 to 99 do
    Index.Btree.insert t ~key:(Index.Key.of_int i ^ "xyz!") ~value:(Int64.of_int i)
  done;
  Pagestore.Bufcache.flush cache;
  Pagestore.Bufcache.crash cache;
  let t2 = Index.Btree.attach ~cache ~device ~segid:(Index.Btree.segid t) in
  Alcotest.(check int) "klen survives" 12 (Index.Btree.klen t2);
  Alcotest.(check int) "count survives" 100 (Index.Btree.count t2);
  Alcotest.(check (list int64)) "lookup survives" [ 55L ]
    (Index.Btree.lookup t2 ~key:(Index.Key.of_int 55 ^ "xyz!"))

let test_key_encoding () =
  Alcotest.(check int64) "roundtrip" 123456789L (Index.Key.to_int64 (Index.Key.of_int64 123456789L));
  Alcotest.(check bool) "order preserved" true
    (String.compare (Index.Key.of_int64 5L) (Index.Key.of_int64 6L) < 0);
  Alcotest.(check bool) "big order" true
    (String.compare (Index.Key.of_int64 255L) (Index.Key.of_int64 256L) < 0);
  let k1 = Index.Key.dir_name ~parentid:10L ~name:"passwd" in
  let k2 = Index.Key.dir_name ~parentid:10L ~name:"passwd" in
  let k3 = Index.Key.dir_name ~parentid:11L ~name:"passwd" in
  Alcotest.(check string) "deterministic" k1 k2;
  Alcotest.(check bool) "parent ordered" true (String.compare k1 k3 < 0);
  Alcotest.(check bool) "within prefix bounds" true
    (String.compare (Index.Key.dir_prefix_lo ~parentid:10L) k1 <= 0
    && String.compare k1 (Index.Key.dir_prefix_hi ~parentid:10L) <= 0)

let test_klen_bounds () =
  let clock = Simclock.Clock.create () in
  let device =
    Pagestore.Device.create ~clock ~name:"d" ~kind:Pagestore.Device.Magnetic_disk ()
  in
  let cache = Pagestore.Bufcache.create ~capacity:64 () in
  (* klen 1 and 64 work *)
  let t1 = Index.Btree.create ~cache ~device ~klen:1 in
  Index.Btree.insert t1 ~key:"a" ~value:1L;
  Alcotest.(check (list int64)) "klen 1" [ 1L ] (Index.Btree.lookup t1 ~key:"a");
  let t64 = Index.Btree.create ~cache ~device ~klen:64 in
  let k = String.make 64 'z' in
  Index.Btree.insert t64 ~key:k ~value:2L;
  Alcotest.(check (list int64)) "klen 64" [ 2L ] (Index.Btree.lookup t64 ~key:k);
  (* out of range rejected *)
  List.iter
    (fun klen ->
      Alcotest.(check bool)
        (Printf.sprintf "klen %d rejected" klen)
        true
        (try
           ignore (Index.Btree.create ~cache ~device ~klen);
           false
         with Invalid_argument _ -> true))
    [ 0; 65 ];
  (* wrong-width key rejected *)
  Alcotest.(check bool) "bad key width" true
    (try
       Index.Btree.insert t1 ~key:"ab" ~value:3L;
       false
     with Invalid_argument _ -> true)

let test_empty_range_scan () =
  let t = make_tree () in
  for i = 0 to 9 do
    Index.Btree.insert t ~key:(key (i * 10)) ~value:(Int64.of_int i)
  done;
  let acc = ref [] in
  Index.Btree.scan_range t ~lo:(key 11) ~hi:(key 19) (fun _ v -> acc := v :: !acc);
  Alcotest.(check (list int64)) "nothing in gap" [] !acc;
  (* lo > hi is just empty *)
  Index.Btree.scan_range t ~lo:(key 90) ~hi:(key 10) (fun _ v -> acc := v :: !acc);
  Alcotest.(check (list int64)) "inverted range empty" [] !acc

let test_duplicate_heavy () =
  let t = make_tree () in
  (* 2000 values under one key forces splits among duplicates *)
  for v = 0 to 1999 do
    Index.Btree.insert t ~key:(key 5) ~value:(Int64.of_int v)
  done;
  Alcotest.(check int) "all stored" 2000 (List.length (Index.Btree.lookup t ~key:(key 5)));
  check_ok t;
  (* delete one value from the middle of the duplicates *)
  Alcotest.(check bool) "targeted delete" true
    (Index.Btree.delete t ~key:(key 5) ~value:1000L);
  Alcotest.(check int) "one fewer" 1999 (List.length (Index.Btree.lookup t ~key:(key 5)));
  Alcotest.(check bool) "1000 gone" false
    (List.mem 1000L (Index.Btree.lookup t ~key:(key 5)));
  check_ok t

(* ---- properties ---- *)

let prop_model_equivalence =
  QCheck.Test.make ~name:"btree matches sorted-assoc model" ~count:60
    QCheck.(list (pair (int_bound 500) (int_bound 3)))
    (fun ops ->
      let t = make_tree () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let kk = key k and vv = Int64.of_int v in
          Index.Btree.insert t ~key:kk ~value:vv;
          let existing = Option.value ~default:[] (Hashtbl.find_opt model k) in
          if not (List.mem vv existing) then Hashtbl.replace model k (vv :: existing))
        ops;
      (match Index.Btree.check_invariants t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      Hashtbl.fold
        (fun k vs acc ->
          acc
          && List.sort Int64.compare vs = Index.Btree.lookup t ~key:(key k))
        model true)

let prop_delete_then_absent =
  QCheck.Test.make ~name:"insert+delete leaves tree consistent" ~count:40
    QCheck.(pair (list (int_bound 200)) (list (int_bound 200)))
    (fun (ins, del) ->
      let t = make_tree () in
      List.iter (fun k -> Index.Btree.insert t ~key:(key k) ~value:(Int64.of_int k)) ins;
      List.iter
        (fun k -> ignore (Index.Btree.delete t ~key:(key k) ~value:(Int64.of_int k) : bool))
        del;
      (match Index.Btree.check_invariants t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_report m);
      List.for_all
        (fun k ->
          let expect = List.mem k ins && not (List.mem k del) in
          (Index.Btree.lookup t ~key:(key k) <> []) = expect)
        (ins @ del))

(* ---- sorted-run bulk insert & the deferred overlay ---- *)

let drain t =
  let acc = ref [] in
  Index.Btree.iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let test_bulk_insert_equivalence () =
  let rng = Simclock.Rng.create 7L in
  let batch =
    List.init 2_000 (fun _ ->
        (key (Simclock.Rng.int rng 500), Int64.of_int (Simclock.Rng.int rng 50)))
  in
  let one = make_tree () in
  List.iter (fun (k, v) -> Index.Btree.insert one ~key:k ~value:v) batch;
  let bulk = make_tree () in
  Index.Btree.bulk_insert bulk batch;
  check_ok one;
  check_ok bulk;
  Alcotest.(check int) "same count" (Index.Btree.count one) (Index.Btree.count bulk);
  Alcotest.(check bool) "same entries" true (drain one = drain bulk);
  for k = 0 to 499 do
    Alcotest.(check (list int64))
      (Printf.sprintf "lookup %d" k)
      (Index.Btree.lookup one ~key:(key k))
      (Index.Btree.lookup bulk ~key:(key k))
  done

let test_bulk_insert_into_populated () =
  (* interleave a sorted run into a tree that already splits: every new
     key lands between existing ones, so the run crosses many leaves *)
  let one = make_tree () and bulk = make_tree () in
  for i = 0 to 4_999 do
    let k = key (i * 2) and v = Int64.of_int i in
    Index.Btree.insert one ~key:k ~value:v;
    Index.Btree.insert bulk ~key:k ~value:v
  done;
  let batch = List.init 5_000 (fun i -> (key ((i * 2) + 1), Int64.of_int i)) in
  List.iter (fun (k, v) -> Index.Btree.insert one ~key:k ~value:v) batch;
  Index.Btree.bulk_insert bulk batch;
  check_ok bulk;
  Alcotest.(check bool) "height grew" true (Index.Btree.height bulk > 1);
  Alcotest.(check int) "same count" (Index.Btree.count one) (Index.Btree.count bulk);
  Alcotest.(check bool) "same entries" true (drain one = drain bulk)

let test_bulk_insert_duplicates () =
  let t = make_tree () in
  Index.Btree.insert t ~key:(key 5) ~value:50L;
  Index.Btree.bulk_insert t
    [ (key 5, 50L); (key 5, 50L); (key 5, 51L); (key 9, 90L); (key 9, 90L) ];
  Alcotest.(check (list int64))
    "dup against tree dropped, new value kept" [ 50L; 51L ]
    (Index.Btree.lookup t ~key:(key 5));
  Alcotest.(check (list int64)) "batch-internal dup dropped" [ 90L ]
    (Index.Btree.lookup t ~key:(key 9));
  Alcotest.(check int) "count" 3 (Index.Btree.count t);
  check_ok t

let mk_db_tree ?group_commit ?deferred_index () =
  let db = Relstore.Db.create ?group_commit ?deferred_index () in
  let clock = Relstore.Db.clock db in
  let device =
    Pagestore.Device.create ~clock ~name:"ix" ~kind:Pagestore.Device.Magnetic_disk ()
  in
  (db, Index.Btree.create ~cache:(Relstore.Db.cache db) ~device ~klen:8)

let test_overlay_grouped_visibility () =
  let db, t = mk_db_tree ~group_commit:8 ~deferred_index:true () in
  Index.Btree.insert t ~key:(key 1) ~value:10L;
  Relstore.Db.with_txn db (fun txn ->
      Relstore.Txn.lock txn ~resource:"ix" Relstore.Lock_mgr.Exclusive;
      Index.Btree.insert_logged t txn ~key:(key 2) ~value:20L;
      Index.Btree.insert_logged t txn ~key:(key 3) ~value:30L;
      Alcotest.(check int) "staged" 2 (Index.Btree.pending_count t);
      Alcotest.(check (list int64)) "overlay point lookup" [ 20L ]
        (Index.Btree.lookup t ~key:(key 2));
      Alcotest.(check int) "count sees overlay" 3 (Index.Btree.count t));
  (* the commit joined a batch: still staged, backed by logged intents *)
  Alcotest.(check int) "staged after commit" 2 (Index.Btree.pending_count t);
  Alcotest.(check bool) "intents logged" true
    (Relstore.Status_log.intent_count (Relstore.Db.status_log db) > 0);
  Relstore.Db.force_group db;
  Alcotest.(check int) "applied at the batch force" 0 (Index.Btree.pending_count t);
  Alcotest.(check (list int64)) "visible once applied" [ 20L ]
    (Index.Btree.lookup t ~key:(key 2));
  Alcotest.(check int) "intents settled" 0
    (Relstore.Status_log.intent_count (Relstore.Db.status_log db));
  check_ok t

let test_overlay_ungrouped_applies_at_commit () =
  let db, t = mk_db_tree ~deferred_index:true () in
  Relstore.Db.with_txn db (fun txn ->
      Relstore.Txn.lock txn ~resource:"ix" Relstore.Lock_mgr.Exclusive;
      Index.Btree.insert_logged t txn ~key:(key 4) ~value:40L;
      Alcotest.(check int) "staged inside txn" 1 (Index.Btree.pending_count t));
  (* no batching: the committing transaction's own flush applies it *)
  Alcotest.(check int) "applied by own commit" 0 (Index.Btree.pending_count t);
  Alcotest.(check (list int64)) "visible" [ 40L ] (Index.Btree.lookup t ~key:(key 4));
  Alcotest.(check int) "no intents left" 0
    (Relstore.Status_log.intent_count (Relstore.Db.status_log db));
  check_ok t

let () =
  Alcotest.run "btree"
    [
      ( "unit",
        [
          Alcotest.test_case "empty tree" `Quick test_empty;
          Alcotest.test_case "insert and lookup" `Quick test_insert_lookup;
          Alcotest.test_case "duplicate keys" `Quick test_duplicate_keys;
          Alcotest.test_case "splits at scale" `Quick test_split_many;
          Alcotest.test_case "random insertion order" `Quick test_reverse_and_random_order;
          Alcotest.test_case "range scan" `Quick test_scan_range;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "min/max entries" `Quick test_min_max;
          Alcotest.test_case "attach after crash" `Quick test_attach;
          Alcotest.test_case "key encodings" `Quick test_key_encoding;
          Alcotest.test_case "klen bounds" `Quick test_klen_bounds;
          Alcotest.test_case "empty range scans" `Quick test_empty_range_scan;
          Alcotest.test_case "duplicate-heavy keys" `Quick test_duplicate_heavy;
        ] );
      ( "bulk insert",
        [
          Alcotest.test_case "sorted-run vs one-at-a-time" `Quick
            test_bulk_insert_equivalence;
          Alcotest.test_case "into a populated tree" `Quick
            test_bulk_insert_into_populated;
          Alcotest.test_case "duplicates dropped" `Quick test_bulk_insert_duplicates;
          Alcotest.test_case "deferred overlay, grouped" `Quick
            test_overlay_grouped_visibility;
          Alcotest.test_case "deferred overlay, ungrouped" `Quick
            test_overlay_ungrouped_applies_at_commit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_model_equivalence; prop_delete_then_absent ] );
    ]
