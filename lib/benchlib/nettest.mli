(** Differential network-fault harness: {!Crashtest}'s sibling for the
    client/server protocol.

    A fleet of {!Remote.Client} sessions drives a randomized workload
    through real {!Remote.Wire} frames over {!Netsim.Link} connections
    while a seeded {!Faultsim} plan injects network faults (drop,
    duplicate, reorder, corrupt, one-way partition, poisoned
    server-crash frames) and device-level crashes mid-request.  A pure
    in-memory oracle tracks the committed state the run must produce;
    after every server crash the system recovers ({!Invfs.Recovery}) and
    the real tree is compared byte-for-byte, including time-travel reads
    of remembered instants.

    Exactly-once is the core assertion: retries, duplicates and dedup
    replays must never apply an operation twice, a client whose session
    dies mid-transaction must observe a clean abort with none of its
    writes visible, and the one genuinely ambiguous outcome — a Commit
    or auto-commit mutation whose session died before the reply — is
    resolved by a lock-free time-travel probe of the committed state,
    with the oracle following the probe. *)

type config = {
  ops : int;
  clients : int;
  fault_interval : int;  (** schedule a random net fault every N ops *)
  crash_interval : int;  (** boundary server crash every N ops *)
  device_crash : bool;  (** also schedule device-level crashes mid-exec *)
  snapshot_interval : int;
  max_file_bytes : int;
  max_dirs : int;
  lease_s : float;
  trace : bool;  (** per-op repro log on stderr *)
}

val default_config : config

type outcome = {
  seed : int64;
  ops_attempted : int;
  ops_applied : int;
  commits : int;
  aborts : int;
  lock_skips : int;
  io_faults : int;
  server_crashes : int;
  replays : int;  (** requests answered from a dedup window *)
  leases_expired : int;
  sessions_lost : int;
  reconnects : int;
  indeterminate : int;  (** ambiguous outcomes resolved by probe *)
  landed : int;  (** ...of which the probe said "it committed" *)
  messages : int;
  bytes_sent : int;
  retries : int;
  timeouts : int;
  net_faults : int;  (** fault-plan actions that actually fired *)
  time_travel_checks : int;
  full_verifies : int;
  mismatches : string list;  (** empty = oracle-equivalent *)
}

val outcome_to_string : outcome -> string

val run : ?config:config -> seed:int64 -> unit -> outcome
(** One seeded run.  Deterministic: the same seed and config replay the
    same op stream, fault schedule and message interleaving. *)
