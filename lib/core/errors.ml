type code =
  | ENOENT
  | EEXIST
  | EISDIR
  | ENOTDIR
  | ENOTEMPTY
  | EBADF
  | EINVAL
  | EROFS
  | ETXN
  | EDEADLK
  | EAGAIN
  | EIO
  | ETIMEDOUT
  | ECONNRESET
  | EBUSY
  | ENOTSUP
  | ESTALE

exception Fs_error of code * string

let code_to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | EISDIR -> "EISDIR"
  | ENOTDIR -> "ENOTDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EBADF -> "EBADF"
  | EINVAL -> "EINVAL"
  | EROFS -> "EROFS"
  | ETXN -> "ETXN"
  | EDEADLK -> "EDEADLK"
  | EAGAIN -> "EAGAIN"
  | EIO -> "EIO"
  | ETIMEDOUT -> "ETIMEDOUT"
  | ECONNRESET -> "ECONNRESET"
  | EBUSY -> "EBUSY"
  | ENOTSUP -> "ENOTSUP"
  | ESTALE -> "ESTALE"

let fail code fmt = Printf.ksprintf (fun msg -> raise (Fs_error (code, msg))) fmt
