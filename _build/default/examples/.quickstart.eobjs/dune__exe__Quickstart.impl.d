examples/quickstart.ml: Bytes Invfs List Postquel Printf Relstore Simclock String
