examples/migration.ml: Bytes Invfs List Pagestore Printf Relstore Simclock
