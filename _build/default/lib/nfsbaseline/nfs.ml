type server = { ffs : Ffs.t; presto : Presto.t option }
type t = { server : server; net : Netsim.t; mutable rpcs : int }
type fh = int

let max_transfer = 8192
let rpc_header = 120 (* RPC + NFS argument overhead per message *)

let make_server ~ffs ?presto () = { ffs; presto }
let server_ffs s = s.ffs
let server_presto s = s.presto
let connect ~server ~net = { server; net; rpcs = 0 }
let rpc_count t = t.rpcs

let rpc t ~request ~reply =
  Netsim.call t.net ~request ~reply;
  t.rpcs <- t.rpcs + 1

let write_mode server =
  match server.presto with Some p -> Ffs.Absorbed p | None -> Ffs.Sync

let create t name =
  rpc t ~request:(rpc_header + String.length name) ~reply:rpc_header;
  Ffs.create_file t.server.ffs name ~mode:(write_mode t.server)

let lookup t name =
  rpc t ~request:(rpc_header + String.length name) ~reply:rpc_header;
  Ffs.lookup t.server.ffs name

let getattr t fh =
  rpc t ~request:rpc_header ~reply:(rpc_header + 68);
  Ffs.size t.server.ffs fh

let read t fh ~off ~buf ~len =
  let total = ref 0 in
  let continue = ref true in
  while !continue && !total < len do
    let want = min max_transfer (len - !total) in
    let here = Int64.add off (Int64.of_int !total) in
    let tmp = Bytes.create want in
    let got = Ffs.read t.server.ffs ~ino:fh ~off:here ~buf:tmp ~len:want in
    rpc t ~request:rpc_header ~reply:(rpc_header + got);
    Bytes.blit tmp 0 buf !total got;
    total := !total + got;
    if got < want then continue := false
  done;
  !total

let write t fh ~off ~data =
  let len = Bytes.length data in
  let sent = ref 0 in
  while !sent < len do
    let now = min max_transfer (len - !sent) in
    let here = Int64.add off (Int64.of_int !sent) in
    rpc t ~request:(rpc_header + now) ~reply:rpc_header;
    Ffs.write t.server.ffs ~ino:fh ~off:here
      ~data:(Bytes.sub data !sent now)
      ~mode:(write_mode t.server);
    sent := !sent + now
  done

let drop_caches server =
  Ffs.drop_caches server.ffs;
  match server.presto with Some p -> Presto.drain_all p | None -> ()
