lib/core/chunk.mli:
