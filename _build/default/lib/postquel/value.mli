(** Runtime values for the POSTQUEL-flavoured query language.

    [Null] is the result of applying a function to a file whose type does
    not define it; any predicate over [Null] is false, which gives the
    paper's semantics for "all the files for which the [keywords] function
    was defined, and whose keywords included ..." — files without the
    function simply never match. *)

type t =
  | Int of int64
  | Float of float
  | Str of string
  | Bool of bool
  | List of t list
  | Null

val to_string : t -> string
(** Display form (strings quoted, lists braced). *)

val equal : t -> t -> bool
(** Structural equality with Int/Float numeric coercion.  [Null] equals
    nothing, not even [Null]. *)

val compare_values : t -> t -> int option
(** Ordering for [<] etc.: numeric for Int/Float (coerced), lexicographic
    for Str, [None] when incomparable or either side is [Null]. *)

val truthy : t -> bool
(** [Bool true] only; everything else (including [Null]) is false. *)

val member : t -> t -> bool
(** [member x xs] — the query language's [in] operator: membership when
    [xs] is a [List], substring when both are [Str], false otherwise. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Arithmetic with Int/Float coercion; [Null] propagates; division by
    zero yields [Null] (and integer division of non-multiples promotes to
    float).  Type mismatches yield [Null] rather than raising, so a query
    over heterogeneous files degrades to "doesn't match". *)
